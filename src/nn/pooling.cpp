#include "nn/pooling.hpp"

#include <stdexcept>

namespace einet::nn {

namespace {
std::size_t pooled_size(std::size_t in, std::size_t kernel,
                        std::size_t stride) {
  if (in < kernel)
    throw std::invalid_argument{"pooling: input smaller than kernel"};
  return (in - kernel) / stride + 1;
}
}  // namespace

MaxPool2d::MaxPool2d(std::size_t kernel, std::size_t stride)
    : kernel_(kernel), stride_(stride == 0 ? kernel : stride) {
  if (kernel_ == 0) throw std::invalid_argument{"MaxPool2d: kernel == 0"};
}

std::string MaxPool2d::name() const {
  return "MaxPool2d(k" + std::to_string(kernel_) + ",s" +
         std::to_string(stride_) + ")";
}

Shape MaxPool2d::out_shape(const Shape& in) const {
  if (in.size() != 4)
    throw std::invalid_argument{"MaxPool2d::out_shape: rank must be 4"};
  return {in[0], in[1], pooled_size(in[2], kernel_, stride_),
          pooled_size(in[3], kernel_, stride_)};
}

std::size_t MaxPool2d::flops(const Shape& in) const {
  return shape_numel(out_shape(in)) * kernel_ * kernel_;
}

void MaxPool2d::forward_into(const Tensor& x, Tensor& out, Workspace&) const {
  const Shape os = out_shape(x.shape());
  const std::size_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const std::size_t oh = os[2], ow = os[3];
  out.resize(os);
  std::size_t out_idx = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float* plane = x.raw() + (i * c + ch) * h * w;
      for (std::size_t oi = 0; oi < oh; ++oi) {
        for (std::size_t oj = 0; oj < ow; ++oj, ++out_idx) {
          // Same NaN-safe window scan as forward(): seed with the window's
          // own first element, keep any value the !(v <= best) compare
          // prefers.
          float best = plane[oi * stride_ * w + oj * stride_];
          for (std::size_t ki = 0; ki < kernel_; ++ki) {
            for (std::size_t kj = 0; kj < kernel_; ++kj) {
              const std::size_t ii = oi * stride_ + ki;
              const std::size_t jj = oj * stride_ + kj;
              const float v = plane[ii * w + jj];
              if (!(v <= best)) best = v;
            }
          }
          out[out_idx] = best;
        }
      }
    }
  }
}

Tensor MaxPool2d::forward(const Tensor& x, bool train) {
  if (!train) return eval(x);
  const Shape os = out_shape(x.shape());
  const std::size_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const std::size_t oh = os[2], ow = os[3];
  Tensor y{os};
  if (train) {
    cached_in_shape_ = x.shape();
    argmax_.assign(y.numel(), 0);
  }
  std::size_t out_idx = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float* plane = x.raw() + (i * c + ch) * h * w;
      const std::size_t base = (i * c + ch) * h * w;
      for (std::size_t oi = 0; oi < oh; ++oi) {
        for (std::size_t oj = 0; oj < ow; ++oj, ++out_idx) {
          // Seed best with the window's own first element — not a sentinel
          // plus global index 0, which made an all-NaN / all--inf window
          // scatter its gradient into element 0 of the whole input tensor.
          // The !(v <= best) comparison is NaN-safe: NaN never wins against
          // itself via the self-compare below, and the selected index always
          // stays inside the window.
          float best = plane[oi * stride_ * w + oj * stride_];
          std::size_t best_idx = base + oi * stride_ * w + oj * stride_;
          for (std::size_t ki = 0; ki < kernel_; ++ki) {
            for (std::size_t kj = 0; kj < kernel_; ++kj) {
              const std::size_t ii = oi * stride_ + ki;
              const std::size_t jj = oj * stride_ + kj;
              const float v = plane[ii * w + jj];
              if (!(v <= best)) {
                best = v;
                best_idx = base + ii * w + jj;
              }
            }
          }
          y[out_idx] = best;
          if (train) argmax_[out_idx] = best_idx;
        }
      }
    }
  }
  return y;
}

Tensor MaxPool2d::backward(const Tensor& grad_out) {
  if (cached_in_shape_.empty())
    throw std::logic_error{"MaxPool2d::backward without forward(train=true)"};
  if (grad_out.numel() != argmax_.size())
    throw std::invalid_argument{"MaxPool2d::backward: bad grad shape"};
  Tensor grad_in{cached_in_shape_};
  for (std::size_t i = 0; i < argmax_.size(); ++i)
    grad_in[argmax_[i]] += grad_out[i];
  return grad_in;
}

AvgPool2d::AvgPool2d(std::size_t kernel, std::size_t stride)
    : kernel_(kernel), stride_(stride == 0 ? kernel : stride) {
  if (kernel_ == 0) throw std::invalid_argument{"AvgPool2d: kernel == 0"};
}

std::string AvgPool2d::name() const {
  return "AvgPool2d(k" + std::to_string(kernel_) + ",s" +
         std::to_string(stride_) + ")";
}

Shape AvgPool2d::out_shape(const Shape& in) const {
  if (in.size() != 4)
    throw std::invalid_argument{"AvgPool2d::out_shape: rank must be 4"};
  return {in[0], in[1], pooled_size(in[2], kernel_, stride_),
          pooled_size(in[3], kernel_, stride_)};
}

std::size_t AvgPool2d::flops(const Shape& in) const {
  return shape_numel(out_shape(in)) * kernel_ * kernel_;
}

void AvgPool2d::forward_into(const Tensor& x, Tensor& out, Workspace&) const {
  const Shape os = out_shape(x.shape());
  const std::size_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const std::size_t oh = os[2], ow = os[3];
  const float inv = 1.0f / static_cast<float>(kernel_ * kernel_);
  out.resize(os);
  std::size_t out_idx = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float* plane = x.raw() + (i * c + ch) * h * w;
      for (std::size_t oi = 0; oi < oh; ++oi) {
        for (std::size_t oj = 0; oj < ow; ++oj, ++out_idx) {
          float acc = 0.0f;
          for (std::size_t ki = 0; ki < kernel_; ++ki)
            for (std::size_t kj = 0; kj < kernel_; ++kj)
              acc += plane[(oi * stride_ + ki) * w + (oj * stride_ + kj)];
          out[out_idx] = acc * inv;
        }
      }
    }
  }
}

Tensor AvgPool2d::forward(const Tensor& x, bool train) {
  if (!train) return eval(x);
  const Shape os = out_shape(x.shape());
  const std::size_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const std::size_t oh = os[2], ow = os[3];
  const float inv = 1.0f / static_cast<float>(kernel_ * kernel_);
  Tensor y{os};
  if (train) cached_in_shape_ = x.shape();
  std::size_t out_idx = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float* plane = x.raw() + (i * c + ch) * h * w;
      for (std::size_t oi = 0; oi < oh; ++oi) {
        for (std::size_t oj = 0; oj < ow; ++oj, ++out_idx) {
          float acc = 0.0f;
          for (std::size_t ki = 0; ki < kernel_; ++ki)
            for (std::size_t kj = 0; kj < kernel_; ++kj)
              acc += plane[(oi * stride_ + ki) * w + (oj * stride_ + kj)];
          y[out_idx] = acc * inv;
        }
      }
    }
  }
  return y;
}

Tensor AvgPool2d::backward(const Tensor& grad_out) {
  if (cached_in_shape_.empty())
    throw std::logic_error{"AvgPool2d::backward without forward(train=true)"};
  const Shape os = out_shape(cached_in_shape_);
  if (grad_out.shape() != os)
    throw std::invalid_argument{"AvgPool2d::backward: bad grad shape"};
  const std::size_t n = cached_in_shape_[0], c = cached_in_shape_[1],
                    h = cached_in_shape_[2], w = cached_in_shape_[3];
  const std::size_t oh = os[2], ow = os[3];
  const float inv = 1.0f / static_cast<float>(kernel_ * kernel_);
  Tensor grad_in{cached_in_shape_};
  std::size_t out_idx = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      float* plane = grad_in.raw() + (i * c + ch) * h * w;
      for (std::size_t oi = 0; oi < oh; ++oi) {
        for (std::size_t oj = 0; oj < ow; ++oj, ++out_idx) {
          const float g = grad_out[out_idx] * inv;
          for (std::size_t ki = 0; ki < kernel_; ++ki)
            for (std::size_t kj = 0; kj < kernel_; ++kj)
              plane[(oi * stride_ + ki) * w + (oj * stride_ + kj)] += g;
        }
      }
    }
  }
  return grad_in;
}

Shape GlobalAvgPool::out_shape(const Shape& in) const {
  if (in.size() != 4)
    throw std::invalid_argument{"GlobalAvgPool::out_shape: rank must be 4"};
  return {in[0], in[1]};
}

void GlobalAvgPool::forward_into(const Tensor& x, Tensor& out,
                                 Workspace&) const {
  const Shape os = out_shape(x.shape());
  const std::size_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const float inv = 1.0f / static_cast<float>(h * w);
  out.resize(os);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float* plane = x.raw() + (i * c + ch) * h * w;
      float acc = 0.0f;
      for (std::size_t s = 0; s < h * w; ++s) acc += plane[s];
      out[i * c + ch] = acc * inv;
    }
  }
}

Tensor GlobalAvgPool::forward(const Tensor& x, bool train) {
  if (!train) return eval(x);
  const Shape os = out_shape(x.shape());
  const std::size_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const float inv = 1.0f / static_cast<float>(h * w);
  Tensor y{os};
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float* plane = x.raw() + (i * c + ch) * h * w;
      float acc = 0.0f;
      for (std::size_t s = 0; s < h * w; ++s) acc += plane[s];
      y[i * c + ch] = acc * inv;
    }
  }
  if (train) cached_in_shape_ = x.shape();
  return y;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_out) {
  if (cached_in_shape_.empty())
    throw std::logic_error{
        "GlobalAvgPool::backward without forward(train=true)"};
  const std::size_t n = cached_in_shape_[0], c = cached_in_shape_[1],
                    h = cached_in_shape_[2], w = cached_in_shape_[3];
  if (grad_out.rank() != 2 || grad_out.dim(0) != n || grad_out.dim(1) != c)
    throw std::invalid_argument{"GlobalAvgPool::backward: bad grad shape"};
  const float inv = 1.0f / static_cast<float>(h * w);
  Tensor grad_in{cached_in_shape_};
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float g = grad_out[i * c + ch] * inv;
      float* plane = grad_in.raw() + (i * c + ch) * h * w;
      for (std::size_t s = 0; s < h * w; ++s) plane[s] = g;
    }
  }
  return grad_in;
}

}  // namespace einet::nn
