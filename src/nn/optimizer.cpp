#include "nn/optimizer.hpp"

#include <cmath>
#include <stdexcept>

namespace einet::nn {

Sgd::Sgd(std::vector<Param*> params, const SgdConfig& config)
    : params_(std::move(params)), config_(config) {
  if (config_.lr <= 0.0f) throw std::invalid_argument{"Sgd: lr must be > 0"};
  if (config_.momentum < 0.0f || config_.momentum >= 1.0f)
    throw std::invalid_argument{"Sgd: momentum must be in [0, 1)"};
  velocity_.reserve(params_.size());
  for (auto* p : params_) {
    if (p == nullptr) throw std::invalid_argument{"Sgd: null parameter"};
    velocity_.emplace_back(p->value.shape());
  }
}

void Sgd::zero_grad() {
  for (auto* p : params_) p->zero_grad();
}

float Sgd::grad_norm() const {
  double acc = 0.0;
  for (const auto* p : params_)
    for (float g : p->grad.data()) acc += static_cast<double>(g) * g;
  return static_cast<float>(std::sqrt(acc));
}

void Sgd::step() {
  float scale = 1.0f;
  if (config_.clip_norm > 0.0f) {
    const float norm = grad_norm();
    if (norm > config_.clip_norm) scale = config_.clip_norm / norm;
  }
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Param& p = *params_[i];
    Tensor& v = velocity_[i];
    for (std::size_t k = 0; k < p.value.numel(); ++k) {
      float g = p.grad[k] * scale;
      if (config_.weight_decay > 0.0f) g += config_.weight_decay * p.value[k];
      v[k] = config_.momentum * v[k] + g;
      p.value[k] -= config_.lr * v[k];
    }
  }
}

Adam::Adam(std::vector<Param*> params, const AdamConfig& config)
    : params_(std::move(params)), config_(config) {
  if (config_.lr <= 0.0f) throw std::invalid_argument{"Adam: lr must be > 0"};
  if (config_.beta1 < 0.0f || config_.beta1 >= 1.0f ||
      config_.beta2 < 0.0f || config_.beta2 >= 1.0f)
    throw std::invalid_argument{"Adam: betas must be in [0, 1)"};
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (auto* p : params_) {
    if (p == nullptr) throw std::invalid_argument{"Adam: null parameter"};
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void Adam::zero_grad() {
  for (auto* p : params_) p->zero_grad();
}

float Adam::grad_norm() const {
  double acc = 0.0;
  for (const auto* p : params_)
    for (float g : p->grad.data()) acc += static_cast<double>(g) * g;
  return static_cast<float>(std::sqrt(acc));
}

void Adam::step() {
  float scale = 1.0f;
  if (config_.clip_norm > 0.0f) {
    const float norm = grad_norm();
    if (norm > config_.clip_norm) scale = config_.clip_norm / norm;
  }
  ++t_;
  const float bc1 =
      1.0f - std::pow(config_.beta1, static_cast<float>(t_));
  const float bc2 =
      1.0f - std::pow(config_.beta2, static_cast<float>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Param& p = *params_[i];
    for (std::size_t k = 0; k < p.value.numel(); ++k) {
      float g = p.grad[k] * scale;
      if (config_.weight_decay > 0.0f) g += config_.weight_decay * p.value[k];
      m_[i][k] = config_.beta1 * m_[i][k] + (1.0f - config_.beta1) * g;
      v_[i][k] = config_.beta2 * v_[i][k] + (1.0f - config_.beta2) * g * g;
      const float mhat = m_[i][k] / bc1;
      const float vhat = v_[i][k] / bc2;
      p.value[k] -= config_.lr * mhat / (std::sqrt(vhat) + config_.eps);
    }
  }
}

}  // namespace einet::nn
