// InferenceArena — the live half of memory planning.
//
// One arena per worker. It owns:
//   * one Tensor per plan slot, with capacity reserved to the slot size, so
//     re-shaping a slot between requests (resize within capacity) never
//     allocates, and
//   * a PooledWorkspace pre-warmed with the plan's dominating scratch
//     blocks, so layer-internal takes (im2col columns, Sequential
//     intermediates) are served without allocating in steady state.
//
// The planner guarantees no two simultaneously-live buffers share a slot;
// the arena just hands out the slot tensor for a buffer id. Slot contents
// are stale bytes from earlier requests or earlier steps — every
// forward_into() kernel overwrites its whole output, which is what makes
// reuse safe (and what test_memplan's truncated-run staleness test checks).
//
// An arena is single-threaded state: engines embed one per worker.
#pragma once

#include <cstddef>
#include <memory>

#include "nn/memplan/plan.hpp"
#include "nn/tensor.hpp"
#include "nn/workspace.hpp"

namespace einet::memplan {

class InferenceArena {
 public:
  explicit InferenceArena(std::shared_ptr<const MemoryPlan> plan);

  /// Slot tensor for buffer `id` (index into plan().buffers), re-shaped to
  /// `shape`. Throws if `shape` needs more floats than the buffer was
  /// profiled at (the plan would be invalid). Contents are unspecified.
  [[nodiscard]] nn::Tensor& buffer(std::size_t id, nn::Shape shape);

  /// Feature-map / logits convenience accessors (profile indexing).
  [[nodiscard]] nn::Tensor& feature(std::size_t i, nn::Shape shape);
  [[nodiscard]] nn::Tensor& logits(std::size_t i, nn::Shape shape);

  /// The scratch workspace layers draw from on this worker.
  [[nodiscard]] nn::PooledWorkspace& workspace() { return ws_; }

  /// Resident footprint: slot capacities + pooled scratch, in bytes.
  [[nodiscard]] std::size_t bytes() const;

  /// Scratch takes that missed the pre-warmed pool and had to allocate.
  /// Zero in steady state when the plan matches the network.
  [[nodiscard]] std::size_t scratch_overflows() const { return ws_.misses(); }

  [[nodiscard]] const MemoryPlan& plan() const { return *plan_; }

 private:
  std::shared_ptr<const MemoryPlan> plan_;
  std::vector<nn::Tensor> slots_;  // one per plan slot, capacity reserved
  nn::PooledWorkspace ws_;
};

}  // namespace einet::memplan
