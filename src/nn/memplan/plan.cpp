#include "nn/memplan/plan.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>

namespace einet::memplan {

std::vector<PlannedBuffer> assign_slots(std::span<const BufferReq> buffers) {
  std::vector<PlannedBuffer> planned;
  planned.reserve(buffers.size());
  // Per slot, the lifetimes of its members so far.
  std::vector<std::vector<BufferLife>> slot_members;
  for (const BufferReq& req : buffers) {
    if (req.life.first > req.life.last)
      throw std::invalid_argument{"assign_slots: buffer '" + req.name +
                                  "' has inverted lifetime"};
    std::size_t slot = slot_members.size();
    for (std::size_t s = 0; s < slot_members.size(); ++s) {
      const bool clash = std::any_of(
          slot_members[s].begin(), slot_members[s].end(),
          [&](const BufferLife& l) { return lifetimes_overlap(l, req.life); });
      if (!clash) {
        slot = s;
        break;
      }
    }
    if (slot == slot_members.size()) slot_members.emplace_back();
    slot_members[slot].push_back(req.life);
    planned.push_back(PlannedBuffer{req, slot, 0});
  }
  return planned;
}

namespace {

/// Dominating scratch multiset: sort each step's takes descending, then the
/// pooled block k is the max over steps of each step's k-th largest take.
/// A pool pre-warmed with these blocks serves any single step's takes in
/// full (best-fit may hand a larger block to a smaller take mid-step, but
/// counting is monotone: k blocks of size >= the k largest takes exist).
std::vector<std::size_t> dominating_scratch(
    const std::vector<std::vector<std::size_t>>& step_scratch) {
  std::vector<std::size_t> pool;
  for (const auto& takes : step_scratch) {
    std::vector<std::size_t> sorted(takes.begin(), takes.end());
    std::sort(sorted.begin(), sorted.end(), std::greater<>{});
    if (sorted.size() > pool.size()) pool.resize(sorted.size(), 0);
    for (std::size_t k = 0; k < sorted.size(); ++k)
      pool[k] = std::max(pool[k], sorted[k]);
  }
  while (!pool.empty() && pool.back() == 0) pool.pop_back();
  return pool;
}

}  // namespace

MemoryPlan plan_memory(const ActivationProfile& profile) {
  if (profile.num_exits == 0)
    throw std::invalid_argument{"plan_memory: profile has no exits"};
  if (profile.num_steps != 2 * profile.num_exits)
    throw std::invalid_argument{"plan_memory: num_steps != 2 * num_exits"};
  if (profile.feat_buffer.size() != profile.num_exits + 1 ||
      profile.logits_buffer.size() != profile.num_exits)
    throw std::invalid_argument{"plan_memory: buffer index maps inconsistent"};
  for (std::size_t idx : profile.feat_buffer)
    if (idx >= profile.buffers.size())
      throw std::invalid_argument{"plan_memory: feat_buffer index OOB"};
  for (std::size_t idx : profile.logits_buffer)
    if (idx >= profile.buffers.size())
      throw std::invalid_argument{"plan_memory: logits_buffer index OOB"};

  MemoryPlan plan;
  plan.buffers = assign_slots(profile.buffers);
  plan.feat_buffer = profile.feat_buffer;
  plan.logits_buffer = profile.logits_buffer;

  std::size_t num_slots = 0;
  for (const PlannedBuffer& b : plan.buffers)
    num_slots = std::max(num_slots, b.slot + 1);
  plan.slot_floats.assign(num_slots, 0);
  for (const PlannedBuffer& b : plan.buffers)
    plan.slot_floats[b.slot] = std::max(plan.slot_floats[b.slot],
                                        b.req.floats);

  // Offsets: slots laid out back to back; every buffer in a slot starts at
  // the slot's offset.
  std::vector<std::size_t> slot_offset(num_slots, 0);
  std::size_t cursor = 0;
  for (std::size_t s = 0; s < num_slots; ++s) {
    slot_offset[s] = cursor;
    cursor += plan.slot_floats[s];
  }
  plan.activation_floats = cursor;
  for (PlannedBuffer& b : plan.buffers) b.offset_floats = slot_offset[b.slot];

  plan.scratch_blocks = dominating_scratch(profile.step_scratch);
  plan.scratch_floats = 0;
  for (std::size_t n : plan.scratch_blocks) plan.scratch_floats += n;

  // Peak = max over steps of (live activation floats + step scratch floats).
  plan.peak_floats = 0;
  for (std::size_t step = 0; step < profile.num_steps; ++step) {
    std::size_t live = 0;
    for (const BufferReq& req : profile.buffers)
      if (req.life.first <= step && step <= req.life.last) live += req.floats;
    std::size_t scratch = 0;
    if (step < profile.step_scratch.size())
      for (std::size_t n : profile.step_scratch[step]) scratch += n;
    plan.peak_floats = std::max(plan.peak_floats, live + scratch);
  }
  return plan;
}

}  // namespace einet::memplan
