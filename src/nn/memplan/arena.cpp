#include "nn/memplan/arena.hpp"

#include <stdexcept>
#include <string>
#include <utility>

namespace einet::memplan {

InferenceArena::InferenceArena(std::shared_ptr<const MemoryPlan> plan)
    : plan_(std::move(plan)) {
  if (!plan_) throw std::invalid_argument{"InferenceArena: null plan"};
  slots_.reserve(plan_->slot_floats.size());
  for (const std::size_t floats : plan_->slot_floats) {
    nn::Tensor t;
    t.reserve(floats);
    slots_.push_back(std::move(t));
  }
  ws_.prewarm(plan_->scratch_blocks);
}

nn::Tensor& InferenceArena::buffer(std::size_t id, nn::Shape shape) {
  if (id >= plan_->buffers.size())
    throw std::out_of_range{"InferenceArena::buffer: id " + std::to_string(id) +
                            " out of range"};
  const PlannedBuffer& b = plan_->buffers[id];
  const std::size_t need = nn::shape_numel(shape);
  if (need > plan_->slot_floats[b.slot])
    throw std::invalid_argument{
        "InferenceArena::buffer: '" + b.req.name + "' needs " +
        std::to_string(need) + " floats but its slot holds " +
        std::to_string(plan_->slot_floats[b.slot])};
  nn::Tensor& t = slots_[b.slot];
  t.resize(std::move(shape));
  return t;
}

nn::Tensor& InferenceArena::feature(std::size_t i, nn::Shape shape) {
  if (i >= plan_->feat_buffer.size())
    throw std::out_of_range{"InferenceArena::feature: index out of range"};
  return buffer(plan_->feat_buffer[i], std::move(shape));
}

nn::Tensor& InferenceArena::logits(std::size_t i, nn::Shape shape) {
  if (i >= plan_->logits_buffer.size())
    throw std::out_of_range{"InferenceArena::logits: index out of range"};
  return buffer(plan_->logits_buffer[i], std::move(shape));
}

std::size_t InferenceArena::bytes() const {
  std::size_t floats = 0;
  for (const nn::Tensor& t : slots_) floats += t.capacity();
  return floats * sizeof(float) + ws_.resident_bytes();
}

}  // namespace einet::memplan
