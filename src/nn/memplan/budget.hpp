// Memory-budget knob: given a byte budget for a serving node, pick how many
// workers fit. With shared immutable weights the footprint model is
//
//   total(workers) = weight_bytes + workers * arena_bytes_per_worker
//
// (one weight copy regardless of worker count, one arena each).
#pragma once

#include <cstddef>

namespace einet::memplan {

struct BudgetPlan {
  std::size_t workers = 0;
  std::size_t weight_bytes = 0;
  std::size_t arena_bytes_per_worker = 0;
  /// Modeled steady-state footprint at `workers`.
  std::size_t total_bytes = 0;
};

/// Largest worker count whose modeled footprint fits `budget_bytes`,
/// optionally capped at `max_workers` (0 = uncapped). Throws
/// std::invalid_argument when the budget cannot hold even one worker
/// (budget < weight_bytes + arena_bytes_per_worker) or when
/// arena_bytes_per_worker is zero.
[[nodiscard]] BudgetPlan fit_budget(std::size_t budget_bytes,
                                    std::size_t weight_bytes,
                                    std::size_t arena_bytes_per_worker,
                                    std::size_t max_workers = 0);

}  // namespace einet::memplan
