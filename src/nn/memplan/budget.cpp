#include "nn/memplan/budget.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace einet::memplan {

BudgetPlan fit_budget(std::size_t budget_bytes, std::size_t weight_bytes,
                      std::size_t arena_bytes_per_worker,
                      std::size_t max_workers) {
  if (arena_bytes_per_worker == 0)
    throw std::invalid_argument{"fit_budget: arena_bytes_per_worker == 0"};
  if (budget_bytes < weight_bytes + arena_bytes_per_worker)
    throw std::invalid_argument{
        "fit_budget: budget " + std::to_string(budget_bytes) +
        " B cannot hold one weight copy (" + std::to_string(weight_bytes) +
        " B) plus one arena (" + std::to_string(arena_bytes_per_worker) +
        " B)"};
  std::size_t workers = (budget_bytes - weight_bytes) / arena_bytes_per_worker;
  if (max_workers != 0) workers = std::min(workers, max_workers);
  BudgetPlan plan;
  plan.workers = workers;
  plan.weight_bytes = weight_bytes;
  plan.arena_bytes_per_worker = arena_bytes_per_worker;
  plan.total_bytes = weight_bytes + workers * arena_bytes_per_worker;
  return plan;
}

}  // namespace einet::memplan
