#include "nn/memplan/profile.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "nn/workspace.hpp"

namespace einet::memplan {

namespace {

nn::Shape with_batch(const nn::Shape& chw) {
  nn::Shape s{1};
  s.insert(s.end(), chw.begin(), chw.end());
  return s;
}

}  // namespace

ActivationProfile profile_activations(const StepwiseHooks& hooks) {
  const std::size_t n = hooks.num_exits;
  if (n == 0)
    throw std::invalid_argument{"profile_activations: network has no blocks"};
  if (!hooks.feature_shape || !hooks.conv_into || !hooks.branch_into)
    throw std::invalid_argument{"profile_activations: incomplete hooks"};

  ActivationProfile p;
  p.num_exits = n;
  p.num_classes = hooks.num_classes;
  p.batch = 1;
  p.num_steps = 2 * n;
  p.step_scratch.resize(p.num_steps);
  const std::size_t last_step = p.num_steps - 1;

  // Activation buffers and their lifetimes over the step index
  // (step 2i = conv part i, step 2i+1 = branch i):
  //   feat 0     — the input; consumed by conv part 0 at step 0.
  //   feat i+1   — produced by conv part i at step 2i, read by branch i at
  //                step 2i+1 and conv part i+1 at step 2i+2 (when present).
  //   logits i   — produced and consumed at step 2i+1.
  p.feat_buffer.push_back(p.buffers.size());
  p.buffers.push_back(BufferReq{
      "feat0", nn::shape_numel(with_batch(hooks.feature_shape(0))),
      BufferLife{0, 0}});
  for (std::size_t i = 0; i < n; ++i) {
    p.feat_buffer.push_back(p.buffers.size());
    p.buffers.push_back(BufferReq{
        "feat" + std::to_string(i + 1),
        nn::shape_numel(with_batch(hooks.feature_shape(i + 1))),
        BufferLife{2 * i, std::min(2 * i + 2, last_step)}});
    p.logits_buffer.push_back(p.buffers.size());
    p.buffers.push_back(BufferReq{"logits" + std::to_string(i),
                                  1 * p.num_classes,
                                  BufferLife{2 * i + 1, 2 * i + 1}});
  }

  // One full stepwise pass to record each step's workspace takes. Values are
  // irrelevant (zeros); only shapes drive the take() sizes.
  nn::PooledWorkspace ws;
  nn::Tensor features{with_batch(hooks.feature_shape(0))};
  for (std::size_t i = 0; i < n; ++i) {
    nn::Tensor next;
    ws.begin_recording();
    hooks.conv_into(i, features, next, ws);
    p.step_scratch[2 * i] = ws.end_recording();

    nn::Tensor logits;
    ws.begin_recording();
    hooks.branch_into(i, next, logits, ws);
    p.step_scratch[2 * i + 1] = ws.end_recording();

    features = std::move(next);
  }
  return p;
}

ActivationProfile profile_activations(const models::MultiExitNetwork& net) {
  StepwiseHooks hooks;
  hooks.num_exits = net.num_exits();
  hooks.num_classes = net.num_classes();
  hooks.feature_shape = [&net](std::size_t i) { return net.feature_shape(i); };
  hooks.conv_into = [&net](std::size_t i, const nn::Tensor& x, nn::Tensor& out,
                           nn::Workspace& ws) {
    net.run_conv_part_into(i, x, out, ws);
  };
  hooks.branch_into = [&net](std::size_t i, const nn::Tensor& x,
                             nn::Tensor& out, nn::Workspace& ws) {
    net.run_branch_into(i, x, out, ws);
  };
  return profile_activations(hooks);
}

MemoryPlan plan_for(const models::MultiExitNetwork& net) {
  return plan_memory(profile_activations(net));
}

}  // namespace einet::memplan
