// Offline activation-lifetime profiler.
//
// Walks a trained MultiExitNetwork's stepwise inference path once (batch
// size 1, zero input — only shapes and workspace take() sizes matter, not
// values) and records:
//   * every activation buffer (input feature map, per-block feature maps,
//     per-exit logits) with its size and first/last-use step, and
//   * the workspace scratch each step borrowed (im2col columns, container
//     intermediates), via PooledWorkspace recording mode.
//
// The resulting ActivationProfile is deterministic for a given architecture
// and feeds plan_memory().
#pragma once

#include "models/multiexit.hpp"
#include "nn/memplan/plan.hpp"

namespace einet::memplan {

[[nodiscard]] ActivationProfile profile_activations(
    const models::MultiExitNetwork& net);

/// Convenience: profile + plan in one call.
[[nodiscard]] MemoryPlan plan_for(const models::MultiExitNetwork& net);

}  // namespace einet::memplan
