// Offline activation-lifetime profiler.
//
// Walks a trained MultiExitNetwork's stepwise inference path once (batch
// size 1, zero input — only shapes and workspace take() sizes matter, not
// values) and records:
//   * every activation buffer (input feature map, per-block feature maps,
//     per-exit logits) with its size and first/last-use step, and
//   * the workspace scratch each step borrowed (im2col columns, container
//     intermediates), via PooledWorkspace recording mode.
//
// The resulting ActivationProfile is deterministic for a given architecture
// and feeds plan_memory().
//
// The StepwiseHooks overload profiles any implementation of the stepwise
// contract (conv step 2i, branch step 2i+1) — the quantized backbone uses it
// to plan its own arenas: its u8 im2col scratch is ~4x smaller than the fp32
// path's, and the recorded takes (not the fp32 network's) must size the
// arena, so fp32 and int8 plans differ exactly where the dtypes differ.
#pragma once

#include <functional>

#include "models/multiexit.hpp"
#include "nn/memplan/plan.hpp"

namespace einet::memplan {

/// A stepwise execution path to profile: shapes plus the two step kernels.
/// `feature_shape(i)` is the batch-less (C, H, W) shape entering block i
/// (i == num_exits -> final shape), mirroring MultiExitNetwork.
struct StepwiseHooks {
  std::size_t num_exits = 0;
  std::size_t num_classes = 0;
  std::function<nn::Shape(std::size_t)> feature_shape;
  std::function<void(std::size_t, const nn::Tensor&, nn::Tensor&,
                     nn::Workspace&)>
      conv_into;
  std::function<void(std::size_t, const nn::Tensor&, nn::Tensor&,
                     nn::Workspace&)>
      branch_into;
};

[[nodiscard]] ActivationProfile profile_activations(const StepwiseHooks& hooks);

[[nodiscard]] ActivationProfile profile_activations(
    const models::MultiExitNetwork& net);

/// Convenience: profile + plan in one call.
[[nodiscard]] MemoryPlan plan_for(const models::MultiExitNetwork& net);

}  // namespace einet::memplan
