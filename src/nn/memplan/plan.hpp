// Activation memory planning (offline half).
//
// The elastic engines execute a MultiExitNetwork *stepwise*: conv part 0,
// branch 0?, conv part 1, branch 1?, ... Every step consumes the previous
// feature map and produces either the next feature map or an exit's logits.
// Because the step order is fixed, every activation buffer has a statically
// known lifetime [first_use, last_use] over the step index, and buffers whose
// lifetimes do not overlap can share storage.
//
// This header defines the profile (what buffers exist, how big, alive when)
// and the plan (which buffers share which arena slot, plus the scratch
// blocks each step borrows from a workspace). The profile comes from
// profile.hpp's profiler; the plan feeds arena.hpp's InferenceArena.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace einet::memplan {

/// Closed step interval during which a buffer's contents must survive.
struct BufferLife {
  std::size_t first = 0;
  std::size_t last = 0;
};

/// Two lifetimes overlap iff they share at least one step.
[[nodiscard]] constexpr bool lifetimes_overlap(const BufferLife& a,
                                               const BufferLife& b) {
  return a.first <= b.last && b.first <= a.last;
}

/// One activation buffer the stepwise path needs.
struct BufferReq {
  std::string name;
  std::size_t floats = 0;
  BufferLife life;
};

/// Everything the planner needs to know about one network's stepwise
/// execution at batch size 1: the activation buffers with their lifetimes,
/// and the workspace-take sizes each step performed (im2col columns,
/// Sequential ping-pong slabs, Residual body outputs...).
struct ActivationProfile {
  std::size_t num_exits = 0;
  std::size_t num_classes = 0;
  std::size_t batch = 1;
  /// 2 * num_exits: step 2i = conv part i, step 2i+1 = branch i.
  std::size_t num_steps = 0;
  std::vector<BufferReq> buffers;
  /// Index into `buffers` of feature map i (i in [0, num_exits]).
  std::vector<std::size_t> feat_buffer;
  /// Index into `buffers` of exit i's logits (i in [0, num_exits)).
  std::vector<std::size_t> logits_buffer;
  /// Per step, the workspace take() sizes recorded during profiling,
  /// in call order.
  std::vector<std::vector<std::size_t>> step_scratch;
};

/// A buffer with its slot assignment.
struct PlannedBuffer {
  BufferReq req;
  std::size_t slot = 0;
  /// Byte-accounting offset of the slot inside the logical arena
  /// (prefix sum of slot sizes), in floats.
  std::size_t offset_floats = 0;
};

/// Overlap-free arena layout for one worker.
struct MemoryPlan {
  std::vector<PlannedBuffer> buffers;
  std::vector<std::size_t> feat_buffer;    // same indexing as the profile
  std::vector<std::size_t> logits_buffer;  //
  /// Size of each slot in floats (max over its member buffers).
  std::vector<std::size_t> slot_floats;
  /// Sum of slot sizes == floats needed for all activations.
  std::size_t activation_floats = 0;
  /// Dominating scratch block sizes (descending): pre-warming a pooled
  /// workspace with exactly these blocks serves every step's takes without
  /// allocating.
  std::vector<std::size_t> scratch_blocks;
  std::size_t scratch_floats = 0;
  /// Max over steps of live-activation floats + that step's scratch floats —
  /// what a theoretically perfect single-block allocator would need.
  std::size_t peak_floats = 0;

  [[nodiscard]] std::size_t arena_floats() const {
    return activation_floats + scratch_floats;
  }
  [[nodiscard]] std::size_t arena_bytes() const {
    return arena_floats() * sizeof(float);
  }
};

/// Greedy interval-based slot assignment: buffers are scanned in profile
/// order; each lands in the first existing slot none of whose members'
/// lifetimes overlap it, or opens a new slot. Deterministic; exposed
/// separately from plan_memory() so tests can drive it with randomized
/// lifetimes and check the no-two-live-buffers-share-a-slot invariant.
[[nodiscard]] std::vector<PlannedBuffer> assign_slots(
    std::span<const BufferReq> buffers);

/// Full planning pass: slot assignment + offsets + dominating scratch pool +
/// peak accounting. Throws std::invalid_argument on an inconsistent profile.
[[nodiscard]] MemoryPlan plan_memory(const ActivationProfile& profile);

}  // namespace einet::memplan
