// Plan explorer: a small CLI for poking at the Search Engine without any
// model training. It builds a synthetic block-wise profile (rising
// confidence, configurable block count), prints the accuracy expectation of
// user-supplied plans, and shows what enumeration / greedy / hybrid / random
// search find.
//
// Usage: plan_explorer [n_exits] [plan_bits ...]
//   plan_explorer 8                 -> searches only
//   plan_explorer 8 10101010 11111111 -> also scores the given plans
#include <iostream>
#include <string>

#include "core/search.hpp"
#include "example_args.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace einet;
  const examples::ArgParser args{argc, argv,
                                 "plan_explorer [n_exits] [plan_bits ...]"};
  const std::size_t n = args.positive(1, 12, "n_exits");
  if (n > 64) {
    std::cerr << "n_exits must be in [1, 64]\n";
    return 1;
  }

  // Synthetic profile: conv parts get slightly cheaper with depth (pooling),
  // branches are flat, confidence rises with depth.
  std::vector<double> conv, branch;
  std::vector<float> conf;
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    conv.push_back(1.0 - 0.4 * static_cast<double>(i) / static_cast<double>(n));
    branch.push_back(0.45);
    conf.push_back(static_cast<float>(
        0.25 + 0.65 * static_cast<double>(i + 1) / static_cast<double>(n)));
    total += conv.back() + branch.back();
  }
  core::UniformExitDistribution dist{total};
  core::PlanProblem problem{.conv_ms = conv,
                            .branch_ms = branch,
                            .confidence = conf,
                            .dist = &dist,
                            .fixed_prefix = 0,
                            .base = core::ExitPlan{n}};

  std::cout << "profile: " << n << " exits, horizon "
            << util::Table::num(total, 2) << " ms, confidence "
            << util::Table::num(conf.front(), 2) << " -> "
            << util::Table::num(conf.back(), 2) << "\n\n";

  util::Table t{{"plan", "outputs", "expectation", "evals", "search ms"}};
  auto add_result = [&](const std::string& label,
                        const core::SearchResult& r) {
    t.add_row({label + " " + r.plan.str(),
               std::to_string(r.plan.num_outputs()),
               util::Table::num(r.expectation, 4),
               std::to_string(r.plans_evaluated),
               util::Table::num(r.search_ms, 3)});
  };

  // User plans.
  for (int a = 2; a < argc; ++a) {
    const std::string bits = argv[a];
    if (bits.size() != n) {
      std::cerr << "plan '" << bits << "' must have exactly " << n
                << " bits\n";
      return 1;
    }
    core::ExitPlan plan{n};
    for (std::size_t i = 0; i < n; ++i) plan.set(i, bits[i] == '1');
    const double e =
        core::accuracy_expectation(plan, conv, branch, conf, dist);
    t.add_row({"user   " + plan.str(), std::to_string(plan.num_outputs()),
               util::Table::num(e, 4), "1", "-"});
  }

  if (n <= 20) add_result("enum  ", core::enumeration_search(problem));
  add_result("greedy", core::greedy_search(problem));
  add_result("hybrid", core::hybrid_search(problem, 4));
  util::Rng rng{1};
  add_result("random", core::random_search(problem, 10000, rng));

  std::cout << t.str();
  return 0;
}
