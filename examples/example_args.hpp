// Shared argv parsing for the example binaries: positional size_t arguments
// with defaults, strict validation (no strtoul silently mapping garbage or
// "0" to a degenerate run), and a uniform usage message on bad input.
#pragma once

#include <cerrno>
#include <cstdlib>
#include <iostream>
#include <string>

namespace einet::examples {

struct ArgParser {
  int argc;
  char** argv;
  std::string usage;  // e.g. "streaming_tasks [num_tasks] [train] [epochs]"

  /// Positional argument `index` (1-based) as a positive integer; falls back
  /// to `def` when absent. Rejects non-numeric input, trailing garbage,
  /// overflow and zero with the usage message and exits.
  [[nodiscard]] std::size_t positive(int index, std::size_t def,
                                     const char* name) const {
    if (index >= argc) return def;
    const char* text = argv[index];
    char* end = nullptr;
    errno = 0;
    const unsigned long long value = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0' || errno == ERANGE || value == 0) {
      std::cerr << "error: <" << name << "> must be a positive integer, got '"
                << text << "'\nusage: " << usage << "\n";
      std::exit(EXIT_FAILURE);
    }
    return static_cast<std::size_t>(value);
  }
};

}  // namespace einet::examples
