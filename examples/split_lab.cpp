// Tiered split-execution demo + acceptance harness (DESIGN.md §11).
//
// Builds one deployment twice: a device tier (network + predictor) and an
// edge tier whose weights — batch-norm running stats included — arrive
// through the checked tensor codec, exactly as a weight distribution would
// ship them. Then drives three link regimes through the full
// device→wire→edge path:
//
//   A  healthy   Forced-k sweep over loopback TCP: for every split point k
//                the offloaded outcome must be bit-identical to the
//                in-process reference (the wire adds transport, not
//                semantics), plus a planner-driven batch that should choose
//                to offload (the device tier is MCU-class, the edge
//                Jetson-class).
//   B  outage    Every offload's connection is killed mid-flight
//                (scenario::LinkScript). Every request must still resolve,
//                via the device's best local exit (SplitPath::kLocalFallback)
//                with zero protocol errors — the ≥99 % degradation bar.
//   C  degraded  The link gains a real (slept) delay larger than the
//                deadline budget. The estimator learns it within a couple of
//                offloads and the planner degrades to local execution — the
//                graceful-degradation loop, observable in the split-point
//                histogram.
//
// Writes artifacts/split_lab_metrics.json: per-phase snapshots plus a
// combined "split" block whose identity (offloaded + local + local_fallback
// == completed, histogram sum == completed) scripts/check_metrics.py
// asserts. Exits nonzero on any verdict failure.
//
// Usage: split_lab [samples_per_k] [outage_requests] [degraded_requests]
#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/time_distribution.hpp"
#include "data/synthetic.hpp"
#include "example_args.hpp"
#include "models/backbones.hpp"
#include "models/trainer.hpp"
#include "net/server.hpp"
#include "nn/serialize.hpp"
#include "predictor/cs_predictor.hpp"
#include "profiling/platform.hpp"
#include "profiling/profiler.hpp"
#include "runtime/live_engine.hpp"
#include "scenario/link_script.hpp"
#include "serving/replicate.hpp"
#include "serving/server.hpp"
#include "split/metrics.hpp"
#include "split/planner.hpp"
#include "split/resume_runner.hpp"
#include "split/split_client.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace einet;

/// Both tiers of the deployment (the split-test fixture, demo-sized).
struct Deployment {
  data::SyntheticDataset ds;
  models::MultiExitNetwork device_net;
  models::MultiExitNetwork edge_net;
  profiling::ETProfile et;         // canonical clock (edge tier)
  profiling::ETProfile device_et;  // planner cost model
  profiling::CSProfile cs;
  std::unique_ptr<predictor::CSPredictor> device_pred;
  std::unique_ptr<predictor::CSPredictor> edge_pred;
  std::vector<float> mean_conf;

  static Deployment build() {
    auto spec = data::synth_cifar10_spec(160, 60);
    auto ds = data::make_synthetic(spec);
    util::Rng rng{7};
    auto net = models::make_msdnet(
        models::MsdnetSpec{.blocks = 4, .step = 1, .base = 1, .channel = 6},
        ds.train->input_shape(), ds.train->num_classes(), rng);
    models::MultiExitTrainer trainer{net};
    models::TrainConfig tc;
    tc.epochs = 4;
    tc.batch_size = 20;
    trainer.train(*ds.train, tc);

    // Ship the trained weights + state buffers to the edge replica through
    // the checked tensor codec — bit-identity across the split depends on it.
    util::Rng rng2{99};
    auto edge = models::make_msdnet(
        models::MsdnetSpec{.blocks = 4, .step = 1, .base = 1, .channel = 6},
        ds.train->input_shape(), ds.train->num_classes(), rng2);
    std::stringstream blob;
    nn::save_params(blob, net.params(), net.state());
    nn::load_params(blob, edge.params(), edge.state());

    auto et = profiling::profile_execution_time(
        net, profiling::edge_fast_platform());
    auto device_et = profiling::profile_execution_time(
        net, profiling::edge_slow_platform());
    auto cs = profiling::profile_confidence(net, *ds.test);

    predictor::CSPredictorConfig pc;
    pc.hidden = 32;
    pc.epochs = 8;
    auto device_pred =
        std::make_unique<predictor::CSPredictor>(net.num_exits(), pc);
    device_pred->train(cs);
    auto edge_pred =
        std::make_unique<predictor::CSPredictor>(net.num_exits(), pc);
    edge_pred->train(cs);  // deterministic: identical weights on both tiers

    std::vector<float> mean_conf(cs.num_exits, 0.0f);
    for (const auto& rec : cs.records)
      for (std::size_t e = 0; e < cs.num_exits; ++e)
        mean_conf[e] += rec.confidence[e];
    for (auto& c : mean_conf) c /= static_cast<float>(cs.records.size());

    return Deployment{std::move(ds),          std::move(net),
                      std::move(edge),        std::move(et),
                      std::move(device_et),   std::move(cs),
                      std::move(device_pred), std::move(edge_pred),
                      std::move(mean_conf)};
  }
};

bool same_outcome(const runtime::InferenceOutcome& a,
                  const runtime::InferenceOutcome& b) {
  return a.has_result == b.has_result && a.exit_index == b.exit_index &&
         a.correct == b.correct && a.completed == b.completed &&
         a.branches_executed == b.branches_executed &&
         a.searches_run == b.searches_run &&
         std::bit_cast<std::uint64_t>(a.result_time_ms) ==
             std::bit_cast<std::uint64_t>(b.result_time_ms) &&
         std::bit_cast<std::uint64_t>(a.deadline_ms) ==
             std::bit_cast<std::uint64_t>(b.deadline_ms);
}

split::SplitMetricsSnapshot sum(const std::vector<split::SplitMetricsSnapshot>&
                                    parts) {
  split::SplitMetricsSnapshot out;
  for (const auto& s : parts) {
    out.completed += s.completed;
    out.offloaded += s.offloaded;
    out.local += s.local;
    out.local_fallback += s.local_fallback;
    out.transport_errors += s.transport_errors;
    out.protocol_errors += s.protocol_errors;
    if (out.split_histogram.size() < s.split_histogram.size())
      out.split_histogram.resize(s.split_histogram.size(), 0);
    for (std::size_t i = 0; i < s.split_histogram.size(); ++i)
      out.split_histogram[i] += s.split_histogram[i];
    out.link_rtt_ms = s.link_rtt_ms;  // last phase's view
    out.link_bytes_per_ms = s.link_bytes_per_ms;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const examples::ArgParser args{
      argc, argv, "split_lab [samples_per_k] [outage_requests] "
                  "[degraded_requests]"};
  const std::size_t samples_per_k = args.positive(1, 4, "samples_per_k");
  const std::size_t outage_requests = args.positive(2, 24, "outage_requests");
  const std::size_t degraded_requests =
      args.positive(3, 12, "degraded_requests");

  std::cout << "== tiered split execution: device ↔ edge over loopback ==\n"
            << "building both tiers (train + codec weight shipment + "
               "profiles)...\n";
  auto dep = Deployment::build();
  const std::size_t n = dep.device_net.num_exits();
  const double edge_total = dep.et.total_ms();
  const double device_total = dep.device_et.total_ms();
  const core::UniformExitDistribution dist{edge_total};
  std::cout << "blocks: " << n << ", edge total " << util::Table::num(
                   edge_total, 3) << " ms, device total "
            << util::Table::num(device_total, 3) << " ms (simulated)\n";

  // Edge stack: live engine behind the resume runner, TCP front-end with
  // activation frames enabled.
  runtime::LiveElasticEngine edge_live{dep.edge_net, dep.et,
                                       dep.edge_pred.get(),
                                       runtime::ElasticConfig{}};
  serving::ServerConfig server_config;
  server_config.queue_capacity = 512;
  server_config.pool.num_workers = 2;
  const auto factory = serving::make_replicated_engine_factory(
      dep.et, nullptr, {}, std::vector<float>(n, 0.5f));
  serving::EdgeServer edge{dep.et, factory,
                           split::make_resume_runner(edge_live, dist),
                           server_config};
  net::TcpServerConfig tsc;
  tsc.accept_activation = true;
  net::EdgeTcpServer tcp{edge, tsc};
  tcp.start();
  std::cout << "edge resume server on 127.0.0.1:" << tcp.port() << "\n";

  runtime::LiveElasticEngine device{dep.device_net, dep.et,
                                    dep.device_pred.get(),
                                    runtime::ElasticConfig{}};
  const auto base_config = [&] {
    split::SplitClientConfig cc;
    cc.net.port = tcp.port();
    cc.planner.device_et = dep.device_et;
    cc.planner.edge_et = dep.et;
    cc.planner.activation_bytes =
        split::activation_frame_bytes(dep.device_net);
    cc.expected_confidence = dep.mean_conf;
    return cc;
  };

  std::vector<split::SplitMetricsSnapshot> phase_snaps;
  std::vector<std::string> phase_names;

  // ---- phase A: healthy link, forced-k sweep + planner batch -------------
  std::size_t mismatches = 0;
  std::size_t offload_checked = 0;
  std::uint64_t planner_offloads = 0;
  {
    split::SplitMetricsSnapshot combined;
    std::vector<split::SplitMetricsSnapshot> a_parts;
    for (const double deadline : {0.7 * edge_total, 3.0 * edge_total}) {
      for (std::size_t k = 0; k < n; ++k) {
        auto cc = base_config();
        cc.force_split = k;
        split::SplitClient client{device, cc};
        for (std::size_t s = 0; s < samples_per_k; ++s) {
          const auto& sample = dep.ds.test->sample(s % dep.ds.test->size());
          const auto ref =
              device.run(sample.image, sample.label, deadline, dist);
          const auto res =
              client.run(sample.image, sample.label, deadline, dist);
          ++offload_checked;
          if (!same_outcome(ref, res.outcome)) {
            if (++mismatches <= 5)
              std::cerr << "MISMATCH k=" << k << " sample=" << s
                        << " deadline=" << deadline << ": exit "
                        << ref.exit_index << " vs " << res.outcome.exit_index
                        << ", t " << ref.result_time_ms << " vs "
                        << res.outcome.result_time_ms << "\n";
          }
        }
        a_parts.push_back(client.metrics().snapshot());
      }
    }
    // Planner-driven batch: MCU-class device + healthy loopback — the
    // planner should ship work to the Jetson-class edge.
    auto cc = base_config();
    split::SplitClient planner_client{device, cc};
    const double deadline = 1.5 * device_total;
    for (std::size_t s = 0; s < 8; ++s) {
      const auto& sample = dep.ds.test->sample(s % dep.ds.test->size());
      (void)planner_client.run(sample.image, sample.label, deadline, dist);
    }
    a_parts.push_back(planner_client.metrics().snapshot());
    planner_offloads = a_parts.back().offloaded;
    combined = sum(a_parts);
    phase_snaps.push_back(combined);
    phase_names.emplace_back("healthy");
    std::cout << "\nphase A (healthy): " << combined.completed
              << " requests, " << combined.offloaded << " offloaded, "
              << mismatches << " mismatches\n";
  }

  // ---- phase B: outage — every offload's connection dies mid-flight ------
  std::uint64_t outage_fallbacks = 0;
  std::uint64_t outage_protocol_errors = 0;
  {
    scenario::LinkScript script{42};
    script.outage_phase(outage_requests);
    auto cc = base_config();
    cc.force_split = n >= 2 ? 2 : 0;  // a prefix with real exits behind it
    cc.net.max_connect_attempts = 2;
    split::SplitClient client{device, cc, &script};
    const double deadline = 3.0 * edge_total;
    for (std::size_t s = 0; s < outage_requests; ++s) {
      const auto& sample = dep.ds.test->sample(s % dep.ds.test->size());
      (void)client.run(sample.image, sample.label, deadline, dist);
    }
    const auto snap = client.metrics().snapshot();
    outage_fallbacks = snap.local_fallback;
    outage_protocol_errors = snap.protocol_errors;
    phase_snaps.push_back(snap);
    phase_names.emplace_back("outage");
    std::cout << "phase B (outage): " << snap.completed << " requests, "
              << snap.local_fallback << " local fallbacks, "
              << snap.transport_errors << " transport errors, link rtt now "
              << util::Table::num(snap.link_rtt_ms, 1) << " ms\n";
  }

  // ---- phase C: degraded link — the planner learns to stay local --------
  std::size_t degraded_tail_local = 0;
  std::uint64_t degraded_offloads = 0;
  const std::size_t tail = degraded_requests / 2;
  {
    const double deadline = 1.5 * device_total;
    // A real (slept) delay comfortably past the deadline guard: the first
    // offload eats it, the estimator learns it, the planner prices the wire
    // out. Kept small in wall-clock terms — the deadlines are simulated ms.
    const double delay_ms = std::max(5.0, 2.0 * deadline);
    scenario::LinkScript script{7};
    script.degraded_phase(degraded_requests, delay_ms, 0.5 * delay_ms);
    auto cc = base_config();  // fresh estimator: optimistic priors again
    split::SplitClient client{device, cc, &script};
    for (std::size_t s = 0; s < degraded_requests; ++s) {
      const auto& sample = dep.ds.test->sample(s % dep.ds.test->size());
      const auto res = client.run(sample.image, sample.label, deadline, dist);
      if (s >= degraded_requests - tail &&
          res.path == split::SplitPath::kLocal)
        ++degraded_tail_local;
    }
    const auto snap = client.metrics().snapshot();
    degraded_offloads = snap.offloaded;
    phase_snaps.push_back(snap);
    phase_names.emplace_back("degraded");
    std::cout << "phase C (degraded, +" << util::Table::num(delay_ms, 1)
              << " ms wire delay): " << snap.offloaded
              << " offloads before the planner went local; last " << tail
              << " requests local: " << degraded_tail_local << "\n";
  }

  tcp.stop();
  edge.shutdown();
  const auto nm = tcp.net_metrics();

  // ---- artifact ----------------------------------------------------------
  const auto combined = sum(phase_snaps);
  std::error_code ec;
  std::filesystem::create_directories("artifacts", ec);
  const char* metrics_path = "artifacts/split_lab_metrics.json";
  {
    std::ostringstream body;
    util::JsonWriter j{body};
    j.begin_object();
    j.key("phases");
    j.begin_object();
    for (std::size_t i = 0; i < phase_snaps.size(); ++i) {
      j.key(phase_names[i]);
      j.raw(phase_snaps[i].to_json());
    }
    j.end_object();
    j.key("split");
    j.raw(combined.to_json());
    j.kv("net_activations", nm.activations);
    j.kv("net_protocol_errors", nm.protocol_errors);
    j.end_object();
    if (std::ofstream out{metrics_path}; out) out << body.str();
  }
  std::cout << "\nwrote " << metrics_path << "\n";

  // ---- verdicts ----------------------------------------------------------
  util::Table table{{"check", "value", "verdict"}};
  const auto row = [&](const std::string& name, const std::string& value,
                       bool ok) {
    table.add_row({name, value, ok ? "ok" : "FAIL"});
    return ok;
  };
  bool ok = true;
  ok &= row("forced-k bit-identity",
            std::to_string(offload_checked - mismatches) + "/" +
                std::to_string(offload_checked),
            mismatches == 0);
  ok &= row("planner offloads on healthy link",
            std::to_string(planner_offloads) + "/8", planner_offloads > 0);
  ok &= row("outage fallback completion",
            std::to_string(outage_fallbacks) + "/" +
                std::to_string(outage_requests),
            outage_fallbacks * 100 >= outage_requests * 99);
  ok &= row("outage protocol errors",
            std::to_string(outage_protocol_errors),
            outage_protocol_errors == 0);
  ok &= row("server protocol errors", std::to_string(nm.protocol_errors),
            nm.protocol_errors == 0);
  ok &= row("degraded link degrades to local",
            std::to_string(degraded_tail_local) + "/" + std::to_string(tail),
            degraded_tail_local == tail && degraded_offloads > 0);
  ok &= row("split identity",
            std::to_string(combined.offloaded) + "+" +
                std::to_string(combined.local) + "+" +
                std::to_string(combined.local_fallback) + "==" +
                std::to_string(combined.completed),
            combined.offloaded + combined.local + combined.local_fallback ==
                combined.completed);
  std::cout << "\n" << table.str();

  if (!ok) {
    std::cerr << "\nERROR: split execution violated its contract\n";
    return 1;
  }
  std::cout << "\nsplit execution held its contract across healthy, outage "
               "and degraded links\n";
  return 0;
}
