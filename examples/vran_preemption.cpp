// Concordia-style 5G vRAN preemption scenario (paper Section I, Figure 1).
//
// An AI task shares an edge server with high-priority 5G vRAN workloads.
// Whenever a vRAN burst arrives, the AI task is preempted immediately — an
// unpredictable exit. This example synthesises a bursty preemption trace
// (clustered, non-uniform — the "arbitrary curves" of [34]), builds an
// empirical TraceExitDistribution from it, and compares:
//   * a classic single-exit model (no result unless it finishes in time),
//   * a plain multi-exit model (100% plan, no planner), and
//   * EINet planning against the measured preemption trace.
//
// Usage: vran_preemption [train_samples] [epochs]
#include <iostream>

#include "data/synthetic.hpp"
#include "example_args.hpp"
#include "models/backbones.hpp"
#include "models/trainer.hpp"
#include "predictor/cs_predictor.hpp"
#include "profiling/platform.hpp"
#include "profiling/profiler.hpp"
#include "runtime/evaluator.hpp"
#include "scenario/scenario_script.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace einet;
  const examples::ArgParser args{argc, argv,
                                 "vran_preemption [train_samples] [epochs]"};
  const std::size_t train_samples = args.positive(1, 800, "train_samples");
  const std::size_t epochs = args.positive(2, 10, "epochs");

  std::cout << "== 5G vRAN preemption scenario ==\n";

  // The AI task: a 10-exit model on SynthCIFAR10, deployed on a fast edge box.
  const auto ds = data::make_synthetic(data::synth_cifar10_spec(train_samples, 300));
  util::Rng rng{21};
  auto net = models::make_msdnet(
      models::MsdnetSpec{.blocks = 10, .step = 1, .base = 2, .channel = 8},
      ds.train->input_shape(), ds.train->num_classes(), rng);
  auto classic = models::make_classic_msdnet(
      models::MsdnetSpec{.blocks = 10, .step = 1, .base = 2, .channel = 8},
      ds.train->input_shape(), ds.train->num_classes(), rng);

  models::TrainConfig tc;
  tc.epochs = epochs;
  models::MultiExitTrainer{net}.train(*ds.train, tc);
  models::MultiExitTrainer{classic}.train(*ds.train, tc);

  const auto platform = profiling::edge_fast_platform();
  const auto et = profiling::profile_execution_time(net, platform);
  const auto et_classic = profiling::profile_execution_time(classic, platform);
  auto cs = profiling::profile_confidence(net, *ds.test);
  auto cs_classic = profiling::profile_confidence(classic, *ds.test);

  // The preemption trace measured on this deployment: a bursty scenario
  // regime (three traffic bursts at 20%, 45% and 80% of the horizon plus a
  // sparse uniform background) sampled through the caller's generator — the
  // same draw law the hand-rolled trace used before the scenario engine.
  const auto scenario =
      scenario::ScenarioScript{et.total_ms(), /*seed=*/21}.bursty_phase(
          4000, {0.20, 0.45, 0.80}, 0.04, 0.75, "vran-bursts");
  const auto trace = scenario.sample_trace(0, 4000, rng);
  core::TraceExitDistribution dist{trace, et.total_ms()};
  std::cout << "preemption trace: " << dist.trace_size()
            << " events over a " << util::Table::num(et.total_ms(), 3)
            << " ms horizon (bursty, non-uniform)\n";

  predictor::CSPredictorConfig pc;
  pc.hidden = 64;
  pc.epochs = 30;
  predictor::CSPredictor pred{net.num_exits(), pc};
  pred.train(cs);

  runtime::Evaluator ev{et, cs, dist};
  util::Table table{{"deployment", "accuracy", "no-result rate"}};
  auto add = [&](const runtime::StrategyStats& s) {
    table.add_row({s.name, util::Table::pct(s.accuracy * 100),
                   util::Table::pct(s.no_result_rate * 100)});
  };
  add(ev.eval_single_exit(cs_classic, et_classic.total_ms(), "classic (single exit)", 5));
  add(ev.eval_static(core::ExitPlan{net.num_exits(), true},
                     "multi-exit, no planner", 5));
  runtime::ElasticConfig cfg;
  add(ev.eval_einet(&pred, cfg, 5));
  std::cout << table.str()
            << "\nElastic inference keeps producing results through vRAN\n"
               "bursts; the classic model is killed with nothing.\n";
  return 0;
}
