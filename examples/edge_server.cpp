// Concurrent edge-serving demo (DESIGN.md §5): a bursty open-loop arrival
// process feeds the EdgeServer — admission control sheds infeasible
// deadlines, a bounded queue buffers the burst, and N workers drain it
// through per-worker elastic-engine replicas. Prints a per-strategy
// throughput/latency table, the EINet metrics snapshot, and a 1-vs-N worker
// scaling comparison whose aggregate accuracy must match exactly (the
// serving determinism contract).
//
// Each task occupies its worker for a wall-clock slice proportional to the
// simulated device time it consumed (result time, or the full budget when
// preempted) — the same occupancy model as streaming_tasks. Workers overlap
// those occupancy waits, so N workers drain the stream close to N× faster
// regardless of host core count, while aggregate accuracy stays bit-equal.
//
// When max_batch > 1 the admitted stream additionally flows through the
// BatchAssembler (DESIGN.md §10): tasks are coalesced into MicroBatches
// before the workers execute them, slack-poor tasks bypass coalescing, and
// the metrics snapshot gains the batching table / JSON block. Per-task
// outcomes are unchanged — the 1-vs-N determinism check below covers the
// batched pipeline too. max_batch 1 disables the batcher (PR-5 pipeline).
//
// Usage: edge_server [num_tasks] [workers] [train_samples] [epochs] [max_batch]
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "data/synthetic.hpp"
#include "example_args.hpp"
#include "models/backbones.hpp"
#include "models/trainer.hpp"
#include "predictor/cs_predictor.hpp"
#include "profiling/calibration.hpp"
#include "profiling/platform.hpp"
#include "profiling/profiler.hpp"
#include "serving/batch/runner.hpp"
#include "serving/replicate.hpp"
#include "serving/server.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace einet;
  const examples::ArgParser args{
      argc, argv,
      "edge_server [num_tasks] [workers] [train_samples] [epochs] "
      "[max_batch]"};
  const std::size_t num_tasks = args.positive(1, 2000, "num_tasks");
  const std::size_t workers = args.positive(2, 4, "workers");
  const std::size_t train_samples = args.positive(3, 400, "train_samples");
  const std::size_t epochs = args.positive(4, 6, "epochs");
  const std::size_t max_batch = args.positive(5, 4, "max_batch");

  std::cout << "== concurrent edge serving under bursty preemption ==\n"
            << (max_batch > 1
                    ? "batching: max_batch=" + std::to_string(max_batch) + "\n"
                    : std::string{"batching: off\n"});

  const auto ds =
      data::make_synthetic(data::synth_cifar10_spec(train_samples, 250));
  util::Rng rng{41};
  auto net = models::make_msdnet(
      models::MsdnetSpec{.blocks = 14, .step = 1, .base = 2, .channel = 8},
      ds.train->input_shape(), ds.train->num_classes(), rng);
  models::TrainConfig tc;
  tc.epochs = epochs;
  models::MultiExitTrainer{net}.train(*ds.train, tc);

  const auto platform = profiling::edge_fast_platform();
  const auto et = profiling::profile_execution_time(net, platform);
  const auto cs = profiling::profile_confidence(net, *ds.test);

  predictor::CSPredictorConfig pc;
  pc.hidden = 64;
  pc.epochs = 30;
  predictor::CSPredictor pred{net.num_exits(), pc};
  pred.train(cs);
  const auto calib = profiling::ConfidenceCalibrator::fit(cs);

  // Open-loop arrival process: Poisson record draws whose preemption budget
  // alternates between high-load bursts (short budgets, some infeasible)
  // and quiet windows (budgets up to 1.6x the full execution time).
  util::Rng stream_rng{2024};
  std::vector<std::pair<std::size_t, double>> stream;
  stream.reserve(num_tasks);
  for (std::size_t i = 0; i < num_tasks; ++i) {
    const double budget = stream_rng.bernoulli(0.6)
                              ? stream_rng.uniform(0.0, 0.4 * et.total_ms())
                              : stream_rng.uniform(0.4 * et.total_ms(),
                                                   1.6 * et.total_ms());
    stream.emplace_back(stream_rng.uniform_int(cs.size()), budget);
  }

  const core::UniformExitDistribution planning_dist{et.total_ms()};
  const std::size_t n = net.num_exits();

  // Wall-clock pacing: a full simulated run occupies its worker for ~600 us.
  const double pace_us_per_sim_ms = 600.0 / et.total_ms();
  const auto paced = [pace_us_per_sim_ms](serving::TaskRunner inner) {
    return serving::TaskRunner{
        [inner = std::move(inner), pace_us_per_sim_ms](
            runtime::ElasticEngine& engine, const serving::Task& task,
            util::Rng& rng) {
          const auto out = inner(engine, task, rng);
          const double occupied_ms =
              out.completed ? out.result_time_ms : task.deadline_ms;
          std::this_thread::sleep_for(std::chrono::microseconds(
              std::llround(occupied_ms * pace_us_per_sim_ms)));
          return out;
        }};
  };

  runtime::ElasticConfig einet_cfg;
  einet_cfg.calibrator = &calib;
  // A deeper enumeration stage per replan: serving-realistic planner cost so
  // the worker pool (not queue hand-off) dominates the wall clock.
  einet_cfg.search.enum_outputs = 7;

  // Each strategy = an engine factory (what every worker replica looks
  // like) + a task runner (how a worker executes one task).
  struct Strategy {
    std::string name;
    serving::EngineFactory factory;
    serving::TaskRunner runner;
  };
  const auto einet_factory =
      serving::make_replicated_engine_factory(et, &pred, einet_cfg);
  const auto plain_factory = serving::make_replicated_engine_factory(
      et, nullptr, {}, std::vector<float>(n, 0.0f));
  const serving::TaskRunner einet_run =
      [&planning_dist](runtime::ElasticEngine& engine,
                       const serving::Task& task, util::Rng&) {
        return engine.run(*task.record, task.deadline_ms, planning_dist);
      };
  const auto static_run = [](core::ExitPlan plan) {
    return serving::TaskRunner{
        [plan = std::move(plan)](runtime::ElasticEngine& engine,
                                 const serving::Task& task, util::Rng&) {
          return engine.run_static(*task.record, plan, task.deadline_ms);
        }};
  };
  const std::vector<Strategy> strategies{
      {"EINet", einet_factory, paced(einet_run)},
      {"static-100%", plain_factory,
       paced(static_run(core::ExitPlan{n, true}))},
      {"static-50%", plain_factory,
       paced(static_run(core::ExitPlan::static_fraction(n, 0.5)))},
  };

  // Drain the identical stream through a fresh server; returns the metrics
  // snapshot plus the wall-clock drain time.
  const auto serve = [&](const Strategy& strat, std::size_t num_workers) {
    serving::ServerConfig config;
    config.queue_capacity = num_tasks;  // open loop, no overflow drops
    config.pool.num_workers = num_workers;
    // max_batch > 1 routes the identical stream through the BatchAssembler;
    // members run sequentially through the same solo runner, so per-task
    // outcomes (and the determinism checks below) are unchanged.
    const auto server =
        max_batch > 1
            ? std::make_unique<serving::EdgeServer>(
                  et, strat.factory,
                  serving::batch::make_solo_batch_runner(strat.runner),
                  serving::batch::BatchAssemblerConfig{
                      .max_batch = max_batch,
                      .max_wait_ms = 1.0,
                      .bypass_slack_ms = 0.3 * et.total_ms()},
                  config)
            : std::make_unique<serving::EdgeServer>(et, strat.factory,
                                                    strat.runner, config);
    util::Timer wall;
    for (const auto& [idx, budget] : stream)
      server->submit(cs.records[idx], budget);
    server->shutdown();
    return std::make_pair(server->metrics(), wall.elapsed_s());
  };

  util::Table table{{"strategy", "workers", "shed", "valid", "accuracy",
                     "valid/s (wall)", "p95 e2e ms"}};
  const auto add_row = [&](const std::string& name, std::size_t num_workers,
                           const serving::MetricsSnapshot& snap,
                           double secs) {
    table.add_row({name, std::to_string(num_workers),
                   std::to_string(snap.shed),
                   util::Table::pct(100.0 * snap.valid_rate()),
                   util::Table::pct(100.0 * snap.accuracy()),
                   util::Table::num(static_cast<double>(snap.valid) / secs, 0),
                   util::Table::num(snap.end_to_end.p95_ms, 3)});
  };

  serving::MetricsSnapshot einet_snap;
  for (const auto& strat : strategies) {
    const auto [snap, secs] = serve(strat, workers);
    if (strat.name == "EINet") einet_snap = snap;
    add_row(strat.name, workers, snap, secs);
  }

  // Scaling: the same EINet stream with 1 worker vs the configured count.
  const auto [one_snap, one_secs] = serve(strategies.front(), 1);
  const auto [w_snap, w_secs] = serve(strategies.front(), workers);
  add_row("EINet", 1, one_snap, one_secs);
  add_row("EINet", workers, w_snap, w_secs);
  std::cout << table.str() << "\n== EINet serving metrics ("
            << std::to_string(workers) << " workers) ==\n"
            << einet_snap.to_string();

  // Machine-readable twin of the table above (seed for bench trajectories).
  const char* metrics_path = "edge_server_metrics.json";
  if (std::ofstream out{metrics_path}; out) {
    out << einet_snap.to_json() << "\n";
    std::cout << "\nwrote " << metrics_path << "\n";
  } else {
    std::cerr << "warning: could not write " << metrics_path << "\n";
  }

  const double speedup =
      (static_cast<double>(w_snap.valid) / w_secs) /
      (static_cast<double>(one_snap.valid) / one_secs);
  std::cout << "\nscaling 1 -> " << workers
            << " workers: " << util::Table::num(speedup, 2)
            << "x valid-results/sec\n";
  if (one_snap.correct != w_snap.correct || one_snap.valid != w_snap.valid ||
      one_snap.completed != w_snap.completed) {
    std::cout << "ERROR: aggregate results changed with the worker count — "
                 "determinism contract violated\n";
    return 1;
  }
  std::cout << "aggregate accuracy identical across worker counts: "
            << util::Table::pct(100.0 * w_snap.accuracy()) << "\n";
  return 0;
}
