// Concurrent edge-serving demo (DESIGN.md §5): a bursty open-loop arrival
// process feeds the EdgeServer — admission control sheds infeasible
// deadlines, a bounded queue buffers the burst, and N workers drain it
// through per-worker elastic-engine replicas. Prints a per-strategy
// throughput/latency table, the EINet metrics snapshot, and a 1-vs-N worker
// scaling comparison whose aggregate accuracy must match exactly (the
// serving determinism contract).
//
// Each task occupies its worker for a wall-clock slice proportional to the
// simulated device time it consumed (result time, or the full budget when
// preempted) — the same occupancy model as streaming_tasks. Workers overlap
// those occupancy waits, so N workers drain the stream close to N× faster
// regardless of host core count, while aggregate accuracy stays bit-equal.
//
// When max_batch > 1 the admitted stream additionally flows through the
// BatchAssembler (DESIGN.md §10): tasks are coalesced into MicroBatches
// before the workers execute them, slack-poor tasks bypass coalescing, and
// the metrics snapshot gains the batching table / JSON block. Per-task
// outcomes are unchanged — the 1-vs-N determinism check below covers the
// batched pipeline too. max_batch 1 disables the batcher (PR-5 pipeline).
//
// A final telemetry phase (DESIGN.md telemetry plane) re-runs the EINet
// strategy against a live scenario injector with the SLO monitor armed and
// an HTTP exposition endpoint up: the process scrapes its own /metrics,
// /healthz and /snapshot.json over loopback, a deterministic burst of
// infeasible deadlines forces an SLO breach, and the breach callback dumps a
// flight-recorder trace. All artifacts land under artifacts/.
//
// A trailing `quant=int8` token (DESIGN.md §16) serves the int8 trunk
// end-to-end instead: the frozen model is quantized, BOTH artifact kinds are
// regenerated for the served path (the "-q8" set — the planner must price
// exits from quantized trajectories, not fp32 ones), the CS-Predictor and
// calibrator retrain on those trajectories, ServerConfig::quant arms the
// pool's per-task int8/fp32 attribution, and QuantGauges surface the int8
// byte accounting in every snapshot and /metrics scrape. Artifacts gain the
// same "-q8" suffix so a quant run never overwrites the fp32 ones.
//
// Usage: edge_server [num_tasks] [workers] [train_samples] [epochs]
//        [max_batch] [quant=int8|quant=fp32]
#include <algorithm>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "data/synthetic.hpp"
#include "example_args.hpp"
#include "models/backbones.hpp"
#include "models/trainer.hpp"
#include "nn/quant/profile.hpp"
#include "obs/telemetry/flight_recorder.hpp"
#include "obs/telemetry/http.hpp"
#include "obs/telemetry/hub.hpp"
#include "obs/trace.hpp"
#include "predictor/cs_predictor.hpp"
#include "profiling/calibration.hpp"
#include "profiling/platform.hpp"
#include "profiling/profiler.hpp"
#include "scenario/injector.hpp"
#include "scenario/scenario_script.hpp"
#include "serving/batch/runner.hpp"
#include "serving/replicate.hpp"
#include "serving/server.hpp"
#include "serving/telemetry_source.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace einet;
  // Trailing mode token (net_server's "telemetry" precedent): positional
  // integers first, then an optional quant=<mode> selector.
  bool int8 = false;
  int argc_eff = argc;
  if (argc > 1) {
    const std::string mode = argv[argc - 1];
    if (mode == "quant=int8") {
      int8 = true;
      --argc_eff;
    } else if (mode == "quant=fp32") {
      --argc_eff;
    } else if (mode.rfind("quant=", 0) == 0) {
      // A typo'd mode must not silently serve fp32.
      std::cerr << "error: unknown quant mode '" << mode
                << "' (expected quant=int8 or quant=fp32)\n";
      return EXIT_FAILURE;
    }
  }
  const examples::ArgParser args{
      argc_eff, argv,
      "edge_server [num_tasks] [workers] [train_samples] [epochs] "
      "[max_batch] [quant=int8|quant=fp32]"};
  const std::size_t num_tasks = args.positive(1, 2000, "num_tasks");
  const std::size_t workers = args.positive(2, 4, "workers");
  const std::size_t train_samples = args.positive(3, 400, "train_samples");
  const std::size_t epochs = args.positive(4, 6, "epochs");
  const std::size_t max_batch = args.positive(5, 4, "max_batch");

  std::cout << "== concurrent edge serving under bursty preemption ==\n"
            << (max_batch > 1
                    ? "batching: max_batch=" + std::to_string(max_batch) + "\n"
                    : std::string{"batching: off\n"})
            << "quant: " << (int8 ? "int8 trunk (-q8 artifact set)" : "fp32")
            << "\n";

  const auto ds =
      data::make_synthetic(data::synth_cifar10_spec(train_samples, 250));
  util::Rng rng{41};
  // The int8 trunk quantizes top-level Conv2d/Linear layers inside plain
  // Sequential conv parts; MSDNet's composite blocks carry none, so the
  // quant mode serves B-AlexNet (the paper's other backbone) instead — a
  // trunk where every conv part actually executes int8.
  auto net = int8 ? models::make_b_alexnet(ds.train->input_shape(),
                                           ds.train->num_classes(), rng)
                  : models::make_msdnet(models::MsdnetSpec{.blocks = 14,
                                                           .step = 1,
                                                           .base = 2,
                                                           .channel = 8},
                                        ds.train->input_shape(),
                                        ds.train->num_classes(), rng);
  models::TrainConfig tc;
  tc.epochs = epochs;
  models::MultiExitTrainer{net}.train(*ds.train, tc);

  const auto platform = profiling::edge_fast_platform();
  const auto et = profiling::profile_execution_time(net, platform);
  const auto cs = profiling::profile_confidence(net, *ds.test);

  predictor::CSPredictorConfig pc;
  pc.hidden = 64;
  pc.epochs = 30;
  predictor::CSPredictor pred{net.num_exits(), pc};
  pred.train(cs);
  const auto calib = profiling::ConfidenceCalibrator::fit(cs);

  const std::size_t n = net.num_exits();

  // Freeze the trained model into its deployed form (one shared immutable
  // weight copy + per-worker arena plan) and gauge what the fleet pins:
  // exported with every metrics snapshot below and scraped live from
  // /metrics in the telemetry phase. The replay engines plan from the
  // profile records, so the network itself is not needed past this point.
  auto shared_model = serving::freeze_model(
      std::move(net), serving::clone_predictor(pred));
  const serving::MemoryGauges memory_gauges{
      .workers = static_cast<std::uint64_t>(workers),
      .weight_bytes =
          static_cast<std::uint64_t>(shared_model.weight_bytes),
      .bytes_per_worker =
          static_cast<std::uint64_t>(shared_model.arena_bytes()),
      .planned_total_bytes =
          static_cast<std::uint64_t>(shared_model.bytes_for(workers))};
  std::cout << "deployed model memory: "
            << shared_model.weight_bytes / 1024 << " KiB weights (shared) + "
            << workers << " x " << shared_model.arena_bytes() / 1024
            << " KiB arena = " << shared_model.bytes_for(workers) / 1024
            << " KiB planned\n";

  // Int8 mode (DESIGN.md §16): derive the quantized trunk from the frozen
  // model and regenerate the SERVED artifact set — quantized trajectories
  // shift per-exit confidence/correctness, so planning against the fp32 set
  // would misprice every exit. The predictor and calibrator retrain on the
  // "-q8" trajectories for the same reason. The fp32 profiles above are
  // untouched (quant artifacts always live under a suffixed stem).
  std::optional<profiling::ETProfile> et_q8;
  std::optional<profiling::CSProfile> cs_q8;
  std::optional<predictor::CSPredictor> pred_q8;
  std::optional<profiling::ConfidenceCalibrator> calib_q8;
  if (int8) {
    serving::quantize_model(shared_model);
    et_q8 = nn::quant::quantized_execution_time(et);
    cs_q8 = nn::quant::profile_confidence_quant(*shared_model.quant, *ds.test);
    pred_q8.emplace(n, pc);
    pred_q8->train(*cs_q8);
    calib_q8 = profiling::ConfidenceCalibrator::fit(*cs_q8);
    std::cout << "int8 trunk: " << shared_model.quant->quantized_layers()
              << " quantized layers, "
              << shared_model.quant_weight_bytes / 1024
              << " KiB int8 weights (+fp32 copy resident), "
              << shared_model.quant_arena_bytes() / 1024
              << " KiB arena/worker\n";
  }
  const serving::QuantMode quant_mode =
      int8 ? serving::QuantMode::kInt8 : serving::QuantMode::kFp32;
  const serving::QuantGauges quant_gauges{
      .enabled = int8,
      .weight_bytes =
          static_cast<std::uint64_t>(shared_model.quant_weight_bytes),
      .arena_bytes_per_worker =
          static_cast<std::uint64_t>(shared_model.quant_arena_bytes())};

  // The artifact set every stage below serves from: admission thresholds,
  // planner prices, predictor queries and the replayed records all come
  // from ONE coherent precision world.
  const profiling::ETProfile& serve_et = int8 ? *et_q8 : et;
  const profiling::CSProfile& serve_cs = int8 ? *cs_q8 : cs;
  predictor::CSPredictor& serve_pred = int8 ? *pred_q8 : pred;
  const profiling::ConfidenceCalibrator& serve_calib =
      int8 ? *calib_q8 : calib;

  // Open-loop arrival process: Poisson record draws whose preemption budget
  // alternates between high-load bursts (short budgets, some infeasible)
  // and quiet windows (budgets up to 1.6x the full execution time). Budgets
  // scale with the served profile's total — the q8 trunk finishes sooner.
  util::Rng stream_rng{2024};
  std::vector<std::pair<std::size_t, double>> stream;
  stream.reserve(num_tasks);
  for (std::size_t i = 0; i < num_tasks; ++i) {
    const double budget =
        stream_rng.bernoulli(0.6)
            ? stream_rng.uniform(0.0, 0.4 * serve_et.total_ms())
            : stream_rng.uniform(0.4 * serve_et.total_ms(),
                                 1.6 * serve_et.total_ms());
    stream.emplace_back(stream_rng.uniform_int(serve_cs.size()), budget);
  }

  const core::UniformExitDistribution planning_dist{serve_et.total_ms()};

  // Wall-clock pacing: a full simulated run occupies its worker for ~600 us.
  const double pace_us_per_sim_ms = 600.0 / serve_et.total_ms();
  const auto paced = [pace_us_per_sim_ms](serving::TaskRunner inner) {
    return serving::TaskRunner{
        [inner = std::move(inner), pace_us_per_sim_ms](
            runtime::ElasticEngine& engine, const serving::Task& task,
            util::Rng& rng) {
          const auto out = inner(engine, task, rng);
          const double occupied_ms =
              out.completed ? out.result_time_ms : task.deadline_ms;
          std::this_thread::sleep_for(std::chrono::microseconds(
              std::llround(occupied_ms * pace_us_per_sim_ms)));
          return out;
        }};
  };

  runtime::ElasticConfig einet_cfg;
  einet_cfg.calibrator = &serve_calib;
  // A deeper enumeration stage per replan: serving-realistic planner cost so
  // the worker pool (not queue hand-off) dominates the wall clock.
  einet_cfg.search.enum_outputs = 7;

  // Each strategy = an engine factory (what every worker replica looks
  // like) + a task runner (how a worker executes one task).
  struct Strategy {
    std::string name;
    serving::EngineFactory factory;
    serving::TaskRunner runner;
  };
  const auto einet_factory =
      serving::make_replicated_engine_factory(serve_et, &serve_pred, einet_cfg);
  const auto plain_factory = serving::make_replicated_engine_factory(
      serve_et, nullptr, {}, std::vector<float>(n, 0.0f));
  const serving::TaskRunner einet_run =
      [&planning_dist](runtime::ElasticEngine& engine,
                       const serving::Task& task, util::Rng&) {
        return engine.run(*task.record, task.deadline_ms, planning_dist);
      };
  const auto static_run = [](core::ExitPlan plan) {
    return serving::TaskRunner{
        [plan = std::move(plan)](runtime::ElasticEngine& engine,
                                 const serving::Task& task, util::Rng&) {
          return engine.run_static(*task.record, plan, task.deadline_ms);
        }};
  };
  const std::vector<Strategy> strategies{
      {"EINet", einet_factory, paced(einet_run)},
      {"static-100%", plain_factory,
       paced(static_run(core::ExitPlan{n, true}))},
      {"static-50%", plain_factory,
       paced(static_run(core::ExitPlan::static_fraction(n, 0.5)))},
  };

  // Drain the identical stream through a fresh server; returns the metrics
  // snapshot plus the wall-clock drain time.
  const auto serve = [&](const Strategy& strat, std::size_t num_workers) {
    serving::ServerConfig config;
    config.queue_capacity = num_tasks;  // open loop, no overflow drops
    config.pool.num_workers = num_workers;
    config.quant = quant_mode;
    // max_batch > 1 routes the identical stream through the BatchAssembler;
    // members run sequentially through the same solo runner, so per-task
    // outcomes (and the determinism checks below) are unchanged.
    const auto server =
        max_batch > 1
            ? std::make_unique<serving::EdgeServer>(
                  serve_et, strat.factory,
                  serving::batch::make_solo_batch_runner(strat.runner),
                  serving::batch::BatchAssemblerConfig{
                      .max_batch = max_batch,
                      .max_wait_ms = 1.0,
                      .bypass_slack_ms = 0.3 * serve_et.total_ms()},
                  config)
            : std::make_unique<serving::EdgeServer>(serve_et, strat.factory,
                                                    strat.runner, config);
    server->registry().set_memory(
        {.workers = static_cast<std::uint64_t>(num_workers),
         .weight_bytes =
             static_cast<std::uint64_t>(shared_model.weight_bytes),
         .bytes_per_worker =
             static_cast<std::uint64_t>(shared_model.arena_bytes()),
         .planned_total_bytes = static_cast<std::uint64_t>(
             shared_model.bytes_for(num_workers))});
    if (int8) server->registry().set_quant(quant_gauges);
    util::Timer wall;
    for (const auto& [idx, budget] : stream)
      server->submit(serve_cs.records[idx], budget);
    server->shutdown();
    return std::make_pair(server->metrics(), wall.elapsed_s());
  };

  util::Table table{{"strategy", "workers", "shed", "valid", "accuracy",
                     "valid/s (wall)", "p95 e2e ms"}};
  const auto add_row = [&](const std::string& name, std::size_t num_workers,
                           const serving::MetricsSnapshot& snap,
                           double secs) {
    table.add_row({name, std::to_string(num_workers),
                   std::to_string(snap.shed),
                   util::Table::pct(100.0 * snap.valid_rate()),
                   util::Table::pct(100.0 * snap.accuracy()),
                   util::Table::num(static_cast<double>(snap.valid) / secs, 0),
                   util::Table::num(snap.end_to_end.p95_ms, 3)});
  };

  serving::MetricsSnapshot einet_snap;
  for (const auto& strat : strategies) {
    const auto [snap, secs] = serve(strat, workers);
    if (strat.name == "EINet") einet_snap = snap;
    add_row(strat.name, workers, snap, secs);
  }

  // Scaling: the same EINet stream with 1 worker vs the configured count.
  const auto [one_snap, one_secs] = serve(strategies.front(), 1);
  const auto [w_snap, w_secs] = serve(strategies.front(), workers);
  add_row("EINet", 1, one_snap, one_secs);
  add_row("EINet", workers, w_snap, w_secs);
  std::cout << table.str() << "\n== EINet serving metrics ("
            << std::to_string(workers) << " workers) ==\n"
            << einet_snap.to_string();

  // Machine-readable twin of the table above (seed for bench trajectories).
  std::error_code artifacts_ec;
  std::filesystem::create_directories("artifacts", artifacts_ec);
  const std::string metrics_path =
      nn::quant::quant_stem("artifacts/edge_server_metrics", int8) + ".json";
  if (std::ofstream out{metrics_path}; out) {
    out << einet_snap.to_json() << "\n";
    std::cout << "\nwrote " << metrics_path << "\n";
  } else {
    std::cerr << "warning: could not write " << metrics_path << "\n";
  }

  const double speedup =
      (static_cast<double>(w_snap.valid) / w_secs) /
      (static_cast<double>(one_snap.valid) / one_secs);
  std::cout << "\nscaling 1 -> " << workers
            << " workers: " << util::Table::num(speedup, 2)
            << "x valid-results/sec\n";
  if (one_snap.correct != w_snap.correct || one_snap.valid != w_snap.valid ||
      one_snap.completed != w_snap.completed) {
    std::cout << "ERROR: aggregate results changed with the worker count — "
                 "determinism contract violated\n";
    return 1;
  }
  std::cout << "aggregate accuracy identical across worker counts: "
            << util::Table::pct(100.0 * w_snap.accuracy()) << "\n";

  // ---- Telemetry phase: injector kills + SLO breach + live /metrics ------
  // A scenario-preempted serving run with the whole telemetry plane armed:
  // wall-clock kills land mid-inference, the SLO monitor watches a rolling
  // shed-rate threshold, a deterministic burst of infeasible deadlines
  // forces a breach, and the breach callback dumps a flight-recorder trace.
  // The process then scrapes its own HTTP endpoint over loopback.
  std::cout << "\n== telemetry phase: preempted run + live scrape ==\n";
  obs::Tracer::instance().set_enabled(true);

  const double horizon = serve_et.total_ms();
  auto script = scenario::ScenarioScript{horizon, /*seed=*/4242}
                    .bursty_phase(256, {0.25, 0.55, 0.85}, 0.05, 0.8,
                                  "telemetry-bursts");
  scenario::InjectorConfig icfg;
  icfg.mode = scenario::ClockMode::kWall;
  icfg.time_scale = 0.4;  // stretch sim ms into real ms so kills land mid-run
  scenario::PreemptionInjector injector{script, icfg};

  serving::ServerConfig tcfg;
  tcfg.queue_capacity = 1024;
  tcfg.pool.num_workers = workers;
  tcfg.pool.injector = &injector;
  tcfg.slo.window = 64;
  tcfg.slo.min_samples = 8;
  tcfg.slo.max_shed_rate = 0.5;  // the infeasible burst below must breach
  tcfg.slo.cooldown_ms = 100.0;
  tcfg.quant = quant_mode;
  const core::UniformExitDistribution telemetry_prior{horizon};
  serving::TaskRunner cancellable_run =
      [&telemetry_prior, time_scale = icfg.time_scale](
          runtime::ElasticEngine& engine, const serving::Task& task,
          util::Rng&) {
        // Pace the simulated clock against wall time (same scale as the
        // injector) so fired kills land mid-run.
        const auto start = std::chrono::steady_clock::now();
        const runtime::BlockHook pace = [start, time_scale](std::size_t,
                                                            double sim_t_ms) {
          std::this_thread::sleep_until(
              start + std::chrono::duration<double, std::milli>(sim_t_ms *
                                                                time_scale));
        };
        return engine.run_cancellable(*task.record, *task.cancel,
                                      telemetry_prior, pace);
      };
  serving::EdgeServer tserver{serve_et, einet_factory, cancellable_run,
                              tcfg};
  tserver.registry().set_memory(memory_gauges);
  if (int8) tserver.registry().set_quant(quant_gauges);

  obs::telemetry::FlightRecorderConfig fr_cfg;
  fr_cfg.dir = "artifacts";
  fr_cfg.prefix = "edge_server_flight";
  obs::telemetry::FlightRecorder recorder{
      fr_cfg, [&tserver] { return tserver.metrics().to_json(); }};
  std::string flight_path;
  tserver.slo().set_on_breach(
      [&recorder, &flight_path](const obs::telemetry::SloSnapshot& snap,
                                const std::string& reason) {
        const std::string path = recorder.dump("slo_" + reason);
        if (flight_path.empty()) flight_path = path;
        std::cout << "SLO breach (" << reason << ", hit_rate "
                  << util::Table::pct(100.0 * snap.hit_rate) << ", shed_rate "
                  << util::Table::pct(100.0 * snap.shed_rate) << ") -> "
                  << (path.empty() ? "(dump suppressed)" : path) << "\n";
      });

  obs::telemetry::TelemetryHub hub;
  hub.add(serving::telemetry_source(tserver));
  obs::telemetry::TelemetryHttpServer http{hub, {}};
  http.start();
  std::cout << "telemetry endpoint: http://127.0.0.1:" << http.port()
            << "/metrics\n";

  util::Rng chaos_rng{7};
  const std::size_t chaos_tasks = std::min<std::size_t>(200, num_tasks);
  for (std::size_t i = 0; i < chaos_tasks; ++i)
    tserver.submit(serve_cs.records[chaos_rng.uniform_int(serve_cs.size())],
                   1.5 * horizon);
  // Mid-run liveness: the endpoint answers while workers are still draining.
  const auto live = obs::telemetry::http_get("127.0.0.1", http.port(),
                                             "/healthz");
  // A full window of sure-to-shed deadlines: shed_rate hits 1.0 > 0.5.
  for (std::size_t i = 0; i < tcfg.slo.window; ++i)
    tserver.submit(serve_cs.records[0], 1e-6);
  tserver.shutdown();

  const auto metrics_scrape =
      obs::telemetry::http_get("127.0.0.1", http.port(), "/metrics");
  const auto snapshot_scrape =
      obs::telemetry::http_get("127.0.0.1", http.port(), "/snapshot.json");
  http.stop();
  hub.remove("serving");

  const std::string scrape_path =
      nn::quant::quant_stem("artifacts/edge_server_scrape", int8) + ".prom";
  if (std::ofstream out{scrape_path}; out) out << metrics_scrape.body;
  const auto tsnap = tserver.metrics();
  std::cout << "telemetry run: " << tsnap.completed << " completed, "
            << tsnap.preempted << " preempted ("
            << injector.wall_kills_fired() << " kills fired), "
            << tsnap.shed << " shed, " << tsnap.slo.breaches
            << " SLO breaches\n"
            << "scrapes: /healthz " << live.status << " (live), /metrics "
            << metrics_scrape.status << " ("
            << metrics_scrape.body.size() << " bytes -> " << scrape_path
            << "), /snapshot.json " << snapshot_scrape.status << " ("
            << snapshot_scrape.body.size() << " bytes)\n";

  if (live.status != 200 || metrics_scrape.status != 200 ||
      snapshot_scrape.status != 200 ||
      metrics_scrape.body.find("einet_serving_submitted_total") ==
          std::string::npos) {
    std::cout << "ERROR: telemetry endpoint scrape failed\n";
    return 1;
  }
  if (tsnap.slo.breaches == 0 || flight_path.empty() ||
      !std::filesystem::exists(flight_path)) {
    std::cout << "ERROR: forced SLO breach did not produce a flight dump\n";
    return 1;
  }
  std::cout << "flight recorder dump: " << flight_path << "\n";
  return 0;
}
