// Observability demo (DESIGN.md §6): serve a bursty task stream through the
// EdgeServer with process-wide tracing enabled, then export the collected
// per-thread ring buffers as Chrome trace-event JSON (open trace.json in
// chrome://tracing or https://ui.perfetto.dev) plus a machine-readable
// metrics/trace summary. The trace shows each task's full journey —
// admission, queue wait (async track), worker execution, per-block runtime
// instants, planner searches and CS-Predictor queries — all correlated by
// task id, so a dropped-deadline task can be root-caused offline.
//
// Usage: trace_explorer [num_tasks] [workers] [train_samples] [epochs]
// Artifacts: ./trace.json, ./metrics.json
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "data/synthetic.hpp"
#include "example_args.hpp"
#include "models/backbones.hpp"
#include "models/trainer.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "predictor/cs_predictor.hpp"
#include "profiling/platform.hpp"
#include "profiling/profiler.hpp"
#include "serving/replicate.hpp"
#include "serving/server.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace einet;
  const examples::ArgParser args{
      argc, argv,
      "trace_explorer [num_tasks] [workers] [train_samples] [epochs]"};
  const std::size_t num_tasks = args.positive(1, 400, "num_tasks");
  const std::size_t workers = args.positive(2, 2, "workers");
  const std::size_t train_samples = args.positive(3, 200, "train_samples");
  const std::size_t epochs = args.positive(4, 2, "epochs");

  std::cout << "== tracing the elastic serving pipeline ==\n";

  // Small model + predictor, same recipe as edge_server.
  const auto ds =
      data::make_synthetic(data::synth_cifar10_spec(train_samples, 150));
  util::Rng rng{41};
  auto net = models::make_msdnet(
      models::MsdnetSpec{.blocks = 14, .step = 1, .base = 2, .channel = 8},
      ds.train->input_shape(), ds.train->num_classes(), rng);
  models::TrainConfig tc;
  tc.epochs = epochs;
  models::MultiExitTrainer{net}.train(*ds.train, tc);

  const auto platform = profiling::edge_fast_platform();
  const auto et = profiling::profile_execution_time(net, platform);
  const auto cs = profiling::profile_confidence(net, *ds.test);

  predictor::CSPredictorConfig pc;
  pc.hidden = 64;
  pc.epochs = 10;
  predictor::CSPredictor pred{net.num_exits(), pc};

  // Enable tracing *before* predictor training so the predictor.train span
  // lands in the trace; size the rings for the whole stream.
  auto& tracer = obs::Tracer::instance();
  tracer.set_ring_capacity(std::size_t{1} << 17);
  tracer.set_enabled(true);
  pred.train(cs);

  // Bursty open-loop stream: 60% short (some infeasible) budgets, 40% ample.
  util::Rng stream_rng{2024};
  std::vector<std::pair<std::size_t, double>> stream;
  stream.reserve(num_tasks);
  for (std::size_t i = 0; i < num_tasks; ++i) {
    const double budget = stream_rng.bernoulli(0.6)
                              ? stream_rng.uniform(0.0, 0.4 * et.total_ms())
                              : stream_rng.uniform(0.4 * et.total_ms(),
                                                   1.6 * et.total_ms());
    stream.emplace_back(stream_rng.uniform_int(cs.size()), budget);
  }

  const core::UniformExitDistribution planning_dist{et.total_ms()};
  runtime::ElasticConfig einet_cfg;
  const auto factory =
      serving::make_replicated_engine_factory(et, &pred, einet_cfg);
  const serving::TaskRunner runner =
      [&planning_dist](runtime::ElasticEngine& engine,
                       const serving::Task& task, util::Rng&) {
        return engine.run(*task.record, task.deadline_ms, planning_dist);
      };

  serving::ServerConfig config;
  config.queue_capacity = num_tasks;
  config.pool.num_workers = workers;
  serving::MetricsSnapshot snap;
  {
    serving::EdgeServer server{et, factory, runner, config};
    for (const auto& [idx, budget] : stream)
      server.submit(cs.records[idx], budget);
    server.shutdown();  // quiesce before collecting the trace
    snap = server.metrics();
  }
  tracer.set_enabled(false);

  const obs::TraceReport report = tracer.collect();
  util::Table per_cat{{"category", "events", "of which spans"}};
  for (std::size_t c = 0; c < obs::kNumCategories; ++c) {
    const auto cat = static_cast<obs::Category>(c);
    std::size_t spans = 0;
    for (const auto& e : report.events)
      if (e.category == cat && e.kind == obs::EventKind::kSpan) ++spans;
    per_cat.add_row({obs::category_name(cat), std::to_string(report.count(cat)),
                     std::to_string(spans)});
  }
  std::cout << per_cat.str() << "collected " << report.events.size()
            << " events from " << report.num_threads << " threads ("
            << report.total_dropped << " dropped)\n\n"
            << snap.to_string();

  if (!obs::write_chrome_trace_file(report, "trace.json")) {
    std::cerr << "error: could not write trace.json\n";
    return 1;
  }
  if (std::ofstream out{"metrics.json"}; out) {
    out << snap.to_json() << "\n";
  } else {
    std::cerr << "error: could not write metrics.json\n";
    return 1;
  }
  std::cout << "\nwrote trace.json (open in chrome://tracing or "
               "ui.perfetto.dev) and metrics.json\n";

  // Self-check: the acceptance contract is spans from >= 4 subsystems.
  if (report.categories_present() < 4) {
    std::cerr << "error: expected events from >= 4 subsystems, got "
              << report.categories_present() << "\n";
    return 1;
  }
  return 0;
}
