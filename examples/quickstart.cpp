// Quickstart: the full EINet pipeline on a small synthetic-MNIST model.
//
//   1. build a fine-grained multi-exit CNN and train it jointly;
//   2. profile it (ET-profile on a simulated edge platform + CS-profile);
//   3. train the block-wise CS-Predictor from the CS-profile;
//   4. run elastic inference under uniformly random forced exits, comparing
//      EINet's hybrid-search planner against the paper's static baselines.
//
// Usage: quickstart [train_samples] [epochs]
#include <iostream>

#include "data/synthetic.hpp"
#include "example_args.hpp"
#include "models/backbones.hpp"
#include "models/trainer.hpp"
#include "predictor/cs_predictor.hpp"
#include "profiling/platform.hpp"
#include "profiling/profiler.hpp"
#include "runtime/evaluator.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace einet;
  const examples::ArgParser args{argc, argv,
                                 "quickstart [train_samples] [epochs]"};
  const std::size_t train_samples = args.positive(1, 600, "train_samples");
  const std::size_t epochs = args.positive(2, 8, "epochs");

  std::cout << "== EINet quickstart ==\n";
  util::Timer total;

  // 1. Dataset + model.
  const auto spec = data::synth_mnist_spec(train_samples, 300);
  const auto ds = data::make_synthetic(spec);
  util::Rng rng{7};
  auto net = models::make_msdnet(
      models::MsdnetSpec{.blocks = 8, .step = 1, .base = 2, .channel = 8},
      ds.train->input_shape(), ds.train->num_classes(), rng);
  std::cout << "model: " << net.name() << " with " << net.num_exits()
            << " exits, " << net.num_params() << " parameters\n";

  util::Timer train_timer;
  models::MultiExitTrainer trainer{net};
  models::TrainConfig tc;
  tc.epochs = epochs;
  tc.on_epoch = [](std::size_t e, float loss) {
    std::cout << "  epoch " << e << " loss " << loss << "\n";
  };
  trainer.train(*ds.train, tc);
  std::cout << "training took " << train_timer.elapsed_s() << " s\n";

  const auto eval = trainer.evaluate(*ds.test);
  std::cout << "per-exit accuracy:";
  for (double a : eval.exit_accuracy) std::cout << ' ' << util::Table::num(a * 100, 1);
  std::cout << " %\n";

  // 2. Block-wise model profiling.
  const auto platform = profiling::edge_fast_platform();
  const auto et = profiling::profile_execution_time(net, platform);
  auto cs = profiling::profile_confidence(net, *ds.test);
  std::cout << "ET-profile total " << util::Table::num(et.total_ms(), 3)
            << " ms on '" << platform.name << "'\n";

  // 3. CS-Predictor.
  predictor::CSPredictorConfig pc;
  pc.hidden = 64;
  pc.epochs = 30;
  predictor::CSPredictor pred{net.num_exits(), pc};
  const float ploss = pred.train(cs);
  std::cout << "CS-Predictor trained, final masked-MSE " << ploss << "\n";

  // 4. Elastic inference under uniform unpredictable exits.
  core::UniformExitDistribution dist{et.total_ms()};
  runtime::Evaluator evaluator{et, cs, dist};

  util::Table table{{"strategy", "accuracy", "no-result", "avg branches"}};
  auto add = [&](const runtime::StrategyStats& s) {
    table.add_row({s.name, util::Table::pct(s.accuracy * 100),
                   util::Table::pct(s.no_result_rate * 100),
                   util::Table::num(s.avg_branches)});
  };
  runtime::ElasticConfig ec;
  add(evaluator.eval_einet(&pred, ec, /*repeats=*/3));
  const std::size_t n = net.num_exits();
  add(evaluator.eval_static(core::ExitPlan::static_fraction(n, 0.25),
                            "static-25%", 3));
  add(evaluator.eval_static(core::ExitPlan::static_fraction(n, 0.50),
                            "static-50%", 3));
  add(evaluator.eval_static(core::ExitPlan{n, true}, "static-100%", 3));
  std::cout << table.str();

  std::cout << "total " << total.elapsed_s() << " s\n";
  return 0;
}
