// Streaming real-time task queue (paper Section I motivation): inference
// requests arrive continuously; each gets a time budget that ends at the
// next (unpredictable) preemption event drawn from a bursty process. The
// example replays a trained model's CS-profile through the elastic engine
// and reports throughput of *valid results* per strategy — the practical
// metric an edge operator cares about.
//
// Usage: streaming_tasks [num_tasks] [train_samples] [epochs]
#include <iostream>

#include "data/synthetic.hpp"
#include "example_args.hpp"
#include "models/backbones.hpp"
#include "models/trainer.hpp"
#include "predictor/cs_predictor.hpp"
#include "profiling/calibration.hpp"
#include "profiling/platform.hpp"
#include "profiling/profiler.hpp"
#include "runtime/elastic_engine.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace einet;
  const examples::ArgParser args{
      argc, argv, "streaming_tasks [num_tasks] [train_samples] [epochs]"};
  const std::size_t num_tasks = args.positive(1, 3000, "num_tasks");
  const std::size_t train_samples = args.positive(2, 800, "train_samples");
  const std::size_t epochs = args.positive(3, 10, "epochs");

  std::cout << "== streaming task queue under bursty preemption ==\n";

  const auto ds =
      data::make_synthetic(data::synth_cifar10_spec(train_samples, 300));
  util::Rng rng{41};
  auto net = models::make_msdnet(
      models::MsdnetSpec{.blocks = 10, .step = 1, .base = 2, .channel = 8},
      ds.train->input_shape(), ds.train->num_classes(), rng);
  models::TrainConfig tc;
  tc.epochs = epochs;
  models::MultiExitTrainer{net}.train(*ds.train, tc);

  const auto platform = profiling::edge_fast_platform();
  const auto et = profiling::profile_execution_time(net, platform);
  auto cs = profiling::profile_confidence(net, *ds.test);

  predictor::CSPredictorConfig pc;
  pc.hidden = 64;
  pc.epochs = 30;
  predictor::CSPredictor pred{net.num_exits(), pc};
  pred.train(cs);
  const auto calib = profiling::ConfidenceCalibrator::fit(cs);

  // Bursty preemption process: the gap until the next preemption alternates
  // between short high-load windows and long quiet windows.
  auto next_budget = [&](util::Rng& r) {
    return r.bernoulli(0.6) ? r.uniform(0.0, 0.4 * et.total_ms())
                            : r.uniform(0.4 * et.total_ms(),
                                        1.6 * et.total_ms());
  };
  core::UniformExitDistribution planning_dist{et.total_ms()};

  struct Strategy {
    std::string name;
    runtime::ElasticConfig config;
    bool einet;
    core::ExitPlan plan;
  };
  runtime::ElasticConfig einet_cfg;
  einet_cfg.calibrator = &calib;
  const std::size_t n = net.num_exits();
  std::vector<Strategy> strategies{
      {"EINet", einet_cfg, true, {}},
      {"static-100%", {}, false, core::ExitPlan{n, true}},
      {"static-50%", {}, false, core::ExitPlan::static_fraction(n, 0.5)},
  };

  util::Table table{{"strategy", "valid results", "correct results",
                     "correct/s (simulated)"}};
  for (const auto& strat : strategies) {
    runtime::ElasticEngine engine{
        et, strat.einet ? &pred : nullptr, strat.config,
        strat.einet ? std::vector<float>{}
                    : std::vector<float>(n, 0.0f)};
    util::Rng stream_rng{2024};  // same preemption stream for everyone
    std::size_t valid = 0, correct = 0;
    double elapsed_ms = 0.0;
    for (std::size_t task = 0; task < num_tasks; ++task) {
      const auto& rec = cs.records[task % cs.size()];
      const double budget = next_budget(stream_rng);
      const auto out =
          strat.einet
              ? engine.run(rec, budget, planning_dist)
              : engine.run_static(rec, strat.plan, budget);
      if (out.has_result) {
        ++valid;
        if (out.correct) ++correct;
      }
      // The task occupies the device until its result (or its preemption).
      elapsed_ms += out.completed ? out.result_time_ms : budget;
    }
    table.add_row({strat.name,
                   util::Table::pct(100.0 * valid / num_tasks),
                   util::Table::pct(100.0 * correct / num_tasks),
                   util::Table::num(correct / (elapsed_ms / 1000.0), 0)});
  }
  std::cout << table.str()
            << "\nEINet turns more of the preempted stream into correct\n"
               "results per simulated second of device time.\n";
  return 0;
}
