// Chaos lab (DESIGN.md §7): an end-to-end regime-switching unpredictable-exit
// scenario driven by the scenario engine.
//
// Stage A (virtual profile clock, bit-reproducible): a three-regime
// ScenarioScript (uniform background → bursty vRAN traffic → late-horizon
// outage window) kills tasks through the PreemptionInjector while the
// OnlineExitEstimator learns the exit distribution from the kill ledger.
// After a short warm-up the planner plans against the *estimated*
// distribution; the lab prints, per phase, the estimator's convergence (sup
// CDF gap against the phase's ground truth), the drift events that fired at
// the regime switches, and how much true accuracy-expectation the
// estimated-distribution plan gives up versus planning with the truth. The
// canonical kill ledger is saved to a JSON file; running the lab twice
// produces byte-identical ledgers (the chaos_lab_replay CTest fixture diffs
// them with cmake -E compare_files).
//
// Stage B (wall clock): the same script drives a real injector thread
// against concurrent EdgeServer workers — kills land mid-inference at
// genuinely asynchronous instants; the metrics snapshot reports how many
// tasks were preempted.
//
// Usage: chaos_lab [tasks_per_phase] [ledger_path]
#include <algorithm>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/expectation.hpp"
#include "core/search.hpp"
#include "core/time_distribution.hpp"
#include "example_args.hpp"
#include "profiling/profiles.hpp"
#include "runtime/elastic_engine.hpp"
#include "scenario/estimator.hpp"
#include "scenario/injector.hpp"
#include "scenario/scenario_script.hpp"
#include "serving/replicate.hpp"
#include "serving/server.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace einet;

/// An 8-exit device profile: growing conv cost, cheap early branches.
profiling::ETProfile lab_et() {
  profiling::ETProfile et;
  et.model_name = "chaos-lab-8";
  et.platform_name = "edge-sim";
  for (std::size_t i = 0; i < 8; ++i) {
    et.conv_ms.push_back(0.6 + 0.1 * static_cast<double>(i));
    et.branch_ms.push_back(0.35);
  }
  return et;
}

/// Synthetic confidence trajectories standing in for a trained model: later
/// exits are more confident and more often correct.
profiling::CSProfile lab_cs(std::size_t records, std::uint64_t seed) {
  profiling::CSProfile cs;
  cs.model_name = "chaos-lab-8";
  cs.dataset_name = "synthetic";
  cs.num_exits = 8;
  util::Rng rng{seed};
  for (std::size_t r = 0; r < records; ++r) {
    profiling::CSRecord rec;
    float conf = rng.uniform_f(0.15f, 0.4f);
    for (std::size_t e = 0; e < cs.num_exits; ++e) {
      conf = std::min(1.0f, conf + rng.uniform_f(0.02f, 0.12f));
      rec.confidence.push_back(conf);
      rec.correct.push_back(rng.bernoulli(conf) ? 1 : 0);
    }
    rec.label = r % 10;
    cs.records.push_back(std::move(rec));
  }
  cs.validate();
  return cs;
}

double sup_cdf_gap(const core::TimeDistribution& a,
                   const core::TimeDistribution& b, double horizon) {
  double gap = 0.0;
  for (int i = 0; i <= 256; ++i) {
    const double t = horizon * static_cast<double>(i) / 256.0;
    gap = std::max(gap, std::abs(a.cdf(t) - b.cdf(t)));
  }
  return gap;
}

}  // namespace

int main(int argc, char** argv) {
  const examples::ArgParser args{argc, argv,
                                 "chaos_lab [tasks_per_phase] [ledger_path]"};
  const std::size_t tasks_per_phase = args.positive(1, 400, "tasks_per_phase");
  const std::string ledger_path =
      argc > 2 ? argv[2] : std::string{"artifacts/chaos_ledger.json"};

  const auto et = lab_et();
  const auto cs = lab_cs(256, /*seed=*/91);
  const double horizon = et.total_ms();
  const std::size_t n = et.num_blocks();

  // Regime-switching script: every phase is a different exit-time law.
  auto script = scenario::ScenarioScript{horizon, /*seed=*/4242}
                    .uniform_phase(tasks_per_phase, "background")
                    .bursty_phase(tasks_per_phase, {0.25, 0.55, 0.85}, 0.05,
                                  0.8, "vran-bursts")
                    .gaussian_phase(tasks_per_phase, 0.8 * horizon,
                                    0.08 * horizon, "late-outage");

  std::cout << "== chaos lab: regime-switching unpredictable exits ==\n"
            << "script: " << script.num_phases() << " phases x "
            << tasks_per_phase << " tasks, horizon "
            << util::Table::num(horizon, 3) << " ms, seed "
            << script.seed() << "\n\n";

  // ---- Stage A: virtual clock, estimator in the planning loop ------------
  scenario::OnlineExitEstimator estimator{horizon};
  scenario::InjectorConfig icfg;  // virtual clock
  icfg.estimator = &estimator;
  scenario::PreemptionInjector injector{script, icfg};

  runtime::ElasticEngine engine{et, nullptr, runtime::ElasticConfig{},
                                std::vector<float>(n, 0.5f)};
  const core::UniformExitDistribution prior{horizon};
  constexpr std::size_t kWarmup = 64;  // kills before trusting the estimator

  std::uint64_t last_generation = estimator.plan_generation();
  std::size_t forced_replans = 0;
  std::size_t correct = 0, no_result = 0;
  std::size_t phase_start_task = 0;

  util::Table phase_table{{"phase", "kills", "drift events", "est sup-gap",
                           "E[acc] truth", "E[acc] estimated"}};
  const std::vector<float> plan_conf(n, 0.6f);
  core::SearchEngine search{{}};
  const auto plan_expectation = [&](const core::TimeDistribution& plan_dist,
                                    const core::TimeDistribution& eval_dist) {
    core::PlanProblem p{.conv_ms = et.conv_ms,
                        .branch_ms = et.branch_ms,
                        .confidence = plan_conf,
                        .dist = &plan_dist,
                        .fixed_prefix = 0,
                        .base = core::ExitPlan{n}};
    return core::accuracy_expectation(search.search(p).plan, et.conv_ms,
                                      et.branch_ms, plan_conf, eval_dist);
  };

  for (std::size_t p = 0; p < script.num_phases(); ++p) {
    for (std::size_t i = 0; i < script.phases()[p].num_tasks; ++i) {
      const std::size_t task = phase_start_task + i;
      // Drift invalidates cached plans: the engine replans from scratch the
      // moment the estimator bumps its generation.
      const std::uint64_t generation = estimator.plan_generation();
      if (generation != last_generation) {
        last_generation = generation;
        ++forced_replans;
      }
      auto token = std::make_shared<core::CancelToken>();
      injector.subscribe(task, token);
      const bool trust_estimator = estimator.count() >= kWarmup;
      const auto snapshot = trust_estimator
                                ? std::make_unique<
                                      core::EmpiricalExitDistribution>(
                                      estimator.snapshot())
                                : nullptr;
      const core::TimeDistribution& plan_dist =
          snapshot ? static_cast<const core::TimeDistribution&>(*snapshot)
                   : prior;
      const auto outcome = engine.run_cancellable(
          cs.records[task % cs.size()], *token, plan_dist);
      injector.complete(task, outcome);
      if (!outcome.has_result)
        ++no_result;
      else if (outcome.correct)
        ++correct;
    }
    phase_start_task += script.phases()[p].num_tasks;

    const auto truth = script.true_distribution(p);
    const auto est = estimator.snapshot();
    phase_table.add_row(
        {script.phases()[p].label, std::to_string(estimator.count()),
         std::to_string(estimator.drift_events()),
         util::Table::num(sup_cdf_gap(est, *truth, horizon), 4),
         util::Table::num(plan_expectation(*truth, *truth), 4),
         util::Table::num(plan_expectation(est, *truth), 4)});
  }

  std::cout << phase_table.str() << "\n"
            << "stage A (virtual clock): " << script.total_tasks()
            << " tasks, " << correct << " correct, " << no_result
            << " killed with no result, " << estimator.drift_events()
            << " drift events, " << forced_replans
            << " plan-cache invalidations\n";

  if (const auto parent = std::filesystem::path{ledger_path}.parent_path();
      !parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);
  }
  injector.ledger().save(ledger_path);
  std::cout << "kill ledger (" << injector.ledger().size()
            << " entries) -> " << ledger_path
            << "  [byte-identical across reruns]\n\n";

  // ---- Stage B: wall clock, injector thread vs serving workers -----------
  scenario::OnlineExitEstimator wall_estimator{horizon};
  scenario::InjectorConfig wcfg;
  wcfg.mode = scenario::ClockMode::kWall;
  wcfg.time_scale = 0.4;  // stretch sim ms into real ms so kills land mid-run
  wcfg.estimator = &wall_estimator;
  scenario::PreemptionInjector wall_injector{script, wcfg};

  serving::ServerConfig scfg;
  scfg.queue_capacity = 1024;
  scfg.pool.num_workers = 4;
  scfg.pool.injector = &wall_injector;
  serving::TaskRunner runner = [&prior, time_scale = wcfg.time_scale](
                                   runtime::ElasticEngine& worker_engine,
                                   const serving::Task& task, util::Rng&) {
    // Replay simulation is instantaneous; pace the simulated clock against
    // wall time (same scale as the injector) so fired kills land mid-run.
    const auto start = std::chrono::steady_clock::now();
    const runtime::BlockHook pace = [start, time_scale](std::size_t,
                                                        double sim_t_ms) {
      std::this_thread::sleep_until(
          start +
          std::chrono::duration<double, std::milli>(sim_t_ms * time_scale));
    };
    return worker_engine.run_cancellable(*task.record, *task.cancel, prior,
                                         pace);
  };
  serving::EdgeServer server{
      et,
      serving::make_replicated_engine_factory(et, nullptr, {},
                                              std::vector<float>(n, 0.5f)),
      runner, scfg};

  util::Rng stream_rng{7};
  const std::size_t wall_tasks = std::min<std::size_t>(200, 2 * tasks_per_phase);
  for (std::size_t i = 0; i < wall_tasks; ++i)
    server.submit(cs.records[stream_rng.uniform_int(cs.size())],
                  1.5 * horizon);
  server.shutdown();

  const auto snap = server.metrics();
  std::cout << "stage B (wall clock, " << scfg.pool.num_workers
            << " workers): " << snap.completed << " completed, "
            << snap.preempted << " preempted by the injector thread, "
            << wall_injector.wall_kills_fired() << " kills fired\n"
            << snap.to_string();
  return 0;
}
