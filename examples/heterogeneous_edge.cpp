// Heterogeneous-edge deployment: the same trained multi-exit model deployed
// on three simulated platforms (server-class, fast edge, slow edge). EINet
// regenerates the ET-profile per platform (paper Section IV-B1), so the
// Search Engine plans differently on each: slower devices with relatively
// expensive branches get sparser plans.
//
// Usage: heterogeneous_edge [train_samples] [epochs]
#include <iostream>

#include "data/synthetic.hpp"
#include "example_args.hpp"
#include "models/backbones.hpp"
#include "models/trainer.hpp"
#include "predictor/cs_predictor.hpp"
#include "profiling/platform.hpp"
#include "profiling/profiler.hpp"
#include "runtime/evaluator.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace einet;
  const examples::ArgParser args{argc, argv,
                                 "heterogeneous_edge [train_samples] [epochs]"};
  const std::size_t train_samples = args.positive(1, 800, "train_samples");
  const std::size_t epochs = args.positive(2, 10, "epochs");

  std::cout << "== heterogeneous edge deployment ==\n";

  const auto ds = data::make_synthetic(data::synth_cifar10_spec(train_samples, 300));
  util::Rng rng{31};
  auto net = models::make_msdnet(
      models::MsdnetSpec{.blocks = 12, .step = 1, .base = 2, .channel = 8},
      ds.train->input_shape(), ds.train->num_classes(), rng);
  models::TrainConfig tc;
  tc.epochs = epochs;
  models::MultiExitTrainer{net}.train(*ds.train, tc);

  // CS-profiles are platform independent; profile once, reuse everywhere.
  auto cs = profiling::profile_confidence(net, *ds.test);
  predictor::CSPredictorConfig pc;
  pc.hidden = 64;
  pc.epochs = 30;
  predictor::CSPredictor pred{net.num_exits(), pc};
  pred.train(cs);

  std::vector<profiling::Platform> platforms{
      profiling::server_platform(), profiling::edge_fast_platform(),
      profiling::edge_slow_platform()};
  // Slow devices pay a disproportionally large launch overhead per branch.
  platforms[2].branch_overhead_ms *= 2.0;

  util::Table table{{"platform", "total (ms)", "branch share", "EINet acc",
                     "100% acc", "avg branches (EINet)"}};
  for (const auto& platform : platforms) {
    // Per-platform ET-profile regeneration (paper Section IV-B1).
    const auto et = profiling::profile_execution_time(net, platform);
    core::UniformExitDistribution dist{et.total_ms()};
    runtime::Evaluator ev{et, cs, dist};
    runtime::ElasticConfig cfg;
    const auto einet = ev.eval_einet(&pred, cfg, 5);
    const auto full =
        ev.eval_static(core::ExitPlan{net.num_exits(), true}, "100%", 5);
    const double branch_share = (et.total_ms() - et.trunk_ms()) / et.total_ms();
    table.add_row({platform.name, util::Table::num(et.total_ms(), 3),
                   util::Table::pct(branch_share * 100, 1),
                   util::Table::pct(einet.accuracy * 100),
                   util::Table::pct(full.accuracy * 100),
                   util::Table::num(einet.avg_branches, 2)});
  }
  std::cout << table.str()
            << "\nThe same model, the same predictor — but per-platform\n"
               "ET-profiles lead the Search Engine to different plans\n"
               "(note the branch budget shrinking as branches get\n"
               "relatively more expensive).\n";
  return 0;
}
