// Networking front-end demo + acceptance harness (DESIGN.md §9): serves a
// deterministic replay stream twice — once in-process through
// EdgeServer::submit(), once over loopback TCP through EdgeTcpServer with a
// fleet of concurrent EdgeClient threads — and verifies the client-observed
// outcomes are bit-identical to the in-process reference. The wire adds
// transport, not semantics: the inference outcome is a pure function of
// (record, deadline), so any divergence is a protocol or plumbing bug.
//
// Also acts as a load generator: all `connections` clients connect up front
// and drive the server concurrently, so the run demonstrates the event loop
// sustaining that many simultaneous connections with zero protocol errors.
//
// When max_batch > 1 both phases serve through the BatchAssembler pipeline
// (DESIGN.md §10); the bit-identity verdict then proves the batched path
// preserves per-task outcomes under real TCP concurrency. 1 disables it.
//
// Passing the literal `telemetry` as the sixth argument raises the live
// exposition plane during phase 2: a TelemetryHub with the serving and net
// sources behind an HTTP endpoint, which the process scrapes over loopback
// after the client fleet drains (body saved to artifacts/ for the
// check_scrape validator). Telemetry must not perturb outcomes — the
// bit-identity verdict runs either way.
//
// Usage: net_server [num_tasks] [connections] [workers] [records] [max_batch]
//                   [telemetry]
#include <atomic>
#include <bit>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/time_distribution.hpp"
#include "example_args.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "obs/telemetry/http.hpp"
#include "obs/telemetry/hub.hpp"
#include "serving/telemetry_source.hpp"
#include "profiling/profiles.hpp"
#include "serving/batch/runner.hpp"
#include "serving/replicate.hpp"
#include "serving/server.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace einet;

// Tiny synthetic profiles (same shape as the serving test fixtures): fast to
// build, deterministic, and rich enough that plans differ across deadlines.
profiling::ETProfile tiny_et() {
  profiling::ETProfile et;
  et.model_name = "tiny";
  et.platform_name = "loopback";
  et.conv_ms = {1.0, 1.0, 1.0, 1.0};
  et.branch_ms = {0.5, 0.5, 0.5, 0.5};
  return et;
}

profiling::CSProfile tiny_cs(std::size_t records, std::uint64_t seed = 7) {
  profiling::CSProfile cs;
  cs.model_name = "tiny";
  cs.dataset_name = "synthetic";
  cs.num_exits = 4;
  util::Rng rng{seed};
  for (std::size_t r = 0; r < records; ++r) {
    profiling::CSRecord rec;
    float conf = rng.uniform_f(0.2f, 0.5f);
    for (std::size_t e = 0; e < cs.num_exits; ++e) {
      conf = std::min(1.0f, conf + rng.uniform_f(0.0f, 0.2f));
      rec.confidence.push_back(conf);
      rec.correct.push_back(rng.bernoulli(conf) ? 1 : 0);
    }
    rec.label = r % 10;
    cs.records.push_back(std::move(rec));
  }
  cs.validate();
  return cs;
}

/// One observed answer, from either path.
struct Observed {
  serving::SubmitStatus status = serving::SubmitStatus::kClosed;
  runtime::InferenceOutcome outcome;
};

bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

/// Every semantic outcome field must match bit-for-bit. planner_ms is
/// excluded: it is measured wall-clock search time (telemetry), not part of
/// the deterministic (record, deadline) -> outcome contract.
bool identical(const Observed& a, const Observed& b) {
  const auto& x = a.outcome;
  const auto& y = b.outcome;
  return a.status == b.status && x.has_result == y.has_result &&
         x.exit_index == y.exit_index && x.correct == y.correct &&
         x.completed == y.completed &&
         x.branches_executed == y.branches_executed &&
         x.searches_run == y.searches_run &&
         same_bits(x.result_time_ms, y.result_time_ms) &&
         same_bits(x.deadline_ms, y.deadline_ms);
}

}  // namespace

int main(int argc, char** argv) {
  const examples::ArgParser args{
      argc, argv,
      "net_server [num_tasks] [connections] [workers] [records] [max_batch] "
      "[telemetry]"};
  const std::size_t num_tasks = args.positive(1, 512, "num_tasks");
  const std::size_t connections = args.positive(2, 64, "connections");
  const std::size_t workers = args.positive(3, 4, "workers");
  const std::size_t records = args.positive(4, 64, "records");
  const std::size_t max_batch = args.positive(5, 1, "max_batch");
  const bool telemetry = argc > 6 && std::string{argv[6]} == "telemetry";

  std::cout << "== TCP serving front-end: loopback vs in-process ==\n"
            << (max_batch > 1
                    ? "batching: max_batch=" + std::to_string(max_batch) + "\n"
                    : std::string{"batching: off\n"});

  const auto et = tiny_et();
  const auto cs = tiny_cs(records);
  const std::size_t n = cs.num_exits;
  const core::UniformExitDistribution dist{et.total_ms()};

  // Predictor-less replicas planning from flat 0.5 fallback confidences:
  // cheap, and still exercises the full elastic planning path per task.
  const auto factory = serving::make_replicated_engine_factory(
      et, nullptr, {}, std::vector<float>(n, 0.5f));
  const serving::TaskRunner runner =
      [&dist](runtime::ElasticEngine& engine, const serving::Task& task,
              util::Rng&) {
        return engine.run(*task.record, task.deadline_ms, dist);
      };

  // Deterministic replay stream; budgets span infeasible (admission sheds)
  // through comfortable, so every SubmitStatus path crosses the wire.
  util::Rng stream_rng{2025};
  std::vector<std::pair<std::size_t, double>> stream;
  stream.reserve(num_tasks);
  for (std::size_t i = 0; i < num_tasks; ++i)
    stream.emplace_back(stream_rng.uniform_int(cs.size()),
                        stream_rng.uniform(0.2, 1.5 * et.total_ms()));

  const auto make_server = [&] {
    serving::ServerConfig config;
    config.queue_capacity = num_tasks;  // no timing-dependent overflow drops
    config.pool.num_workers = workers;
    if (max_batch > 1)
      return std::make_unique<serving::EdgeServer>(
          et, factory, serving::batch::make_solo_batch_runner(runner),
          serving::batch::BatchAssemblerConfig{.max_batch = max_batch,
                                               .max_wait_ms = 1.0,
                                               .bypass_slack_ms =
                                                   0.3 * et.total_ms()},
          config);
    return std::make_unique<serving::EdgeServer>(et, factory, runner, config);
  };

  // ---- phase 1: in-process reference through the owned-payload submit ----
  std::vector<Observed> reference(num_tasks);
  {
    const auto server = make_server();
    for (std::size_t i = 0; i < num_tasks; ++i) {
      const auto& [idx, budget] = stream[i];
      auto rec = std::make_shared<const profiling::CSRecord>(cs.records[idx]);
      const auto status = server->submit(
          std::move(rec), budget,
          [&reference, i](const serving::TaskResult& result) {
            reference[i].outcome = result.outcome;  // distinct slot per task
          });
      reference[i].status = status;
    }
    server->shutdown();  // joins workers: all callbacks happened-before here
  }

  // ---- phase 2: the same stream through loopback TCP -------------------
  const auto edge_server = make_server();
  serving::EdgeServer& edge = *edge_server;
  net::TcpServerConfig net_config;
  net_config.max_connections = connections + 8;
  net::EdgeTcpServer tcp{edge, net_config};
  tcp.start();
  std::cout << "serving on 127.0.0.1:" << tcp.port() << " with " << workers
            << " workers, " << connections << " client connections\n";

  // Optional exposition plane: serving + net sources behind one endpoint.
  obs::telemetry::TelemetryHub hub;
  std::unique_ptr<obs::telemetry::TelemetryHttpServer> http;
  if (telemetry) {
    hub.add(serving::telemetry_source(edge));
    hub.add(net::telemetry_source(tcp));
    http = std::make_unique<obs::telemetry::TelemetryHttpServer>(
        hub, obs::telemetry::HttpServerConfig{});
    http->start();
    std::cout << "telemetry endpoint: http://127.0.0.1:" << http->port()
              << "/metrics\n";
  }

  std::vector<Observed> observed(num_tasks);
  std::atomic<std::size_t> failures{0};

  // Barrier: every client dials before any sends, so the server holds all
  // `connections` sockets concurrently for the whole measured run.
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  std::size_t ready = 0;
  bool go = false;

  util::Timer wall;
  std::vector<std::thread> clients;
  clients.reserve(connections);
  for (std::size_t t = 0; t < connections; ++t) {
    clients.emplace_back([&, t] {
      try {
        net::TcpClientConfig cc;
        cc.port = tcp.port();
        net::EdgeClient client{cc};
        client.connect();
        {
          std::unique_lock lock{gate_mu};
          if (++ready == connections) gate_cv.notify_all();
          gate_cv.wait(lock, [&] { return go; });
        }
        for (std::size_t i = t; i < num_tasks; i += connections) {
          const auto& [idx, budget] = stream[i];
          const auto resp = client.request(cs.records[idx], budget);
          observed[i].status = resp.status;
          observed[i].outcome = resp.outcome;
        }
      } catch (const std::exception& e) {
        failures.fetch_add(1);
        std::cerr << "client " << t << " failed: " << e.what() << "\n";
      }
    });
  }
  {
    std::unique_lock lock{gate_mu};
    gate_cv.wait(lock, [&] { return ready == connections; });
    go = true;
  }
  gate_cv.notify_all();
  for (auto& c : clients) c.join();
  const double secs = wall.elapsed_s();

  // Self-scrape while both servers are still live, then save the body for
  // the offline Prometheus-format validator (scripts/check_scrape.py).
  obs::telemetry::HttpResponse metrics_scrape;
  obs::telemetry::HttpResponse healthz_scrape;
  if (telemetry) {
    metrics_scrape =
        obs::telemetry::http_get("127.0.0.1", http->port(), "/metrics");
    healthz_scrape =
        obs::telemetry::http_get("127.0.0.1", http->port(), "/healthz");
    std::error_code ec;
    std::filesystem::create_directories("artifacts", ec);
    const char* scrape_path = "artifacts/net_server_scrape.prom";
    if (std::ofstream out{scrape_path}; out) out << metrics_scrape.body;
    std::cout << "scraped /metrics: " << metrics_scrape.status << " ("
              << metrics_scrape.body.size() << " bytes -> " << scrape_path
              << "), /healthz: " << healthz_scrape.status << "\n";
    http->stop();
  }
  tcp.stop();
  edge.shutdown();

  const auto nm = tcp.net_metrics();
  std::cout << "\n== net metrics ==\n" << nm.to_string();

  // ---- verdicts ---------------------------------------------------------
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < num_tasks; ++i) {
    if (identical(reference[i], observed[i])) continue;
    if (++mismatches <= 5)
      std::cerr << "MISMATCH task " << i << ": status "
                << static_cast<int>(reference[i].status) << " vs "
                << static_cast<int>(observed[i].status) << ", exit "
                << reference[i].outcome.exit_index << " vs "
                << observed[i].outcome.exit_index << ", t "
                << reference[i].outcome.result_time_ms << " vs "
                << observed[i].outcome.result_time_ms << "\n";
  }

  util::Table table{{"check", "value", "verdict"}};
  const auto row = [&](const std::string& name, const std::string& value,
                       bool ok) {
    table.add_row({name, value, ok ? "ok" : "FAIL"});
    return ok;
  };
  bool ok = true;
  ok &= row("client threads failed", std::to_string(failures.load()),
            failures.load() == 0);
  ok &= row("concurrent connections",
            std::to_string(nm.connections_accepted) + " accepted",
            nm.connections_accepted >= connections);
  ok &= row("protocol errors", std::to_string(nm.protocol_errors),
            nm.protocol_errors == 0);
  ok &= row("responses", std::to_string(nm.responses) + "/" +
                             std::to_string(num_tasks),
            nm.responses == num_tasks);
  ok &= row("bit-identical outcomes",
            std::to_string(num_tasks - mismatches) + "/" +
                std::to_string(num_tasks),
            mismatches == 0);
  if (telemetry) {
    ok &= row("live /metrics scrape",
              std::to_string(metrics_scrape.status) + ", " +
                  std::to_string(metrics_scrape.body.size()) + " bytes",
              metrics_scrape.status == 200 &&
                  metrics_scrape.body.find("einet_net_requests_total") !=
                      std::string::npos &&
                  metrics_scrape.body.find("einet_serving_submitted_total") !=
                      std::string::npos);
    ok &= row("live /healthz", std::to_string(healthz_scrape.status),
              healthz_scrape.status == 200);
  }
  std::cout << "\n" << table.str();
  std::cout << "\nloopback throughput: "
            << util::Table::num(static_cast<double>(num_tasks) / secs, 0)
            << " round-trips/s across " << connections << " connections\n";

  if (!ok) {
    std::cerr << "\nERROR: loopback serving diverged from the in-process "
                 "reference\n";
    return 1;
  }
  std::cout << "loopback outcomes bit-identical to in-process submit\n";
  return 0;
}
