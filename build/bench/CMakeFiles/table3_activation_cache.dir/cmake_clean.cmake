file(REMOVE_RECURSE
  "CMakeFiles/table3_activation_cache.dir/table3_activation_cache.cpp.o"
  "CMakeFiles/table3_activation_cache.dir/table3_activation_cache.cpp.o.d"
  "table3_activation_cache"
  "table3_activation_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_activation_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
