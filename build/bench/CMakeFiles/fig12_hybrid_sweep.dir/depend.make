# Empty dependencies file for fig12_hybrid_sweep.
# This may be replaced when dependencies are built.
