# Empty compiler generated dependencies file for fig09_dynamic_plans.
# This may be replaced when dependencies are built.
