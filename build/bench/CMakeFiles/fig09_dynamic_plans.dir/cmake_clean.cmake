file(REMOVE_RECURSE
  "CMakeFiles/fig09_dynamic_plans.dir/fig09_dynamic_plans.cpp.o"
  "CMakeFiles/fig09_dynamic_plans.dir/fig09_dynamic_plans.cpp.o.d"
  "fig09_dynamic_plans"
  "fig09_dynamic_plans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_dynamic_plans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
