file(REMOVE_RECURSE
  "CMakeFiles/fig08_static_plans.dir/fig08_static_plans.cpp.o"
  "CMakeFiles/fig08_static_plans.dir/fig08_static_plans.cpp.o.d"
  "fig08_static_plans"
  "fig08_static_plans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_static_plans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
