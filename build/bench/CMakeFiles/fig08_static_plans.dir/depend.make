# Empty dependencies file for fig08_static_plans.
# This may be replaced when dependencies are built.
