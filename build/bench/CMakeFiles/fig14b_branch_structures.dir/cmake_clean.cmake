file(REMOVE_RECURSE
  "CMakeFiles/fig14b_branch_structures.dir/fig14b_branch_structures.cpp.o"
  "CMakeFiles/fig14b_branch_structures.dir/fig14b_branch_structures.cpp.o.d"
  "fig14b_branch_structures"
  "fig14b_branch_structures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14b_branch_structures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
