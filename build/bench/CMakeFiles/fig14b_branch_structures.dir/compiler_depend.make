# Empty compiler generated dependencies file for fig14b_branch_structures.
# This may be replaced when dependencies are built.
