file(REMOVE_RECURSE
  "CMakeFiles/fig14a_model_structures.dir/fig14a_model_structures.cpp.o"
  "CMakeFiles/fig14a_model_structures.dir/fig14a_model_structures.cpp.o.d"
  "fig14a_model_structures"
  "fig14a_model_structures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14a_model_structures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
