# Empty dependencies file for fig14a_model_structures.
# This may be replaced when dependencies are built.
