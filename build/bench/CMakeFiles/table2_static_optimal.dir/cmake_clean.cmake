file(REMOVE_RECURSE
  "CMakeFiles/table2_static_optimal.dir/table2_static_optimal.cpp.o"
  "CMakeFiles/table2_static_optimal.dir/table2_static_optimal.cpp.o.d"
  "table2_static_optimal"
  "table2_static_optimal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_static_optimal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
