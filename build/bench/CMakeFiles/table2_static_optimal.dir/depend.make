# Empty dependencies file for table2_static_optimal.
# This may be replaced when dependencies are built.
