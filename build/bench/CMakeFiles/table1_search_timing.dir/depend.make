# Empty dependencies file for table1_search_timing.
# This may be replaced when dependencies are built.
