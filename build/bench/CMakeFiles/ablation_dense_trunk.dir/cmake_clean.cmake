file(REMOVE_RECURSE
  "CMakeFiles/ablation_dense_trunk.dir/ablation_dense_trunk.cpp.o"
  "CMakeFiles/ablation_dense_trunk.dir/ablation_dense_trunk.cpp.o.d"
  "ablation_dense_trunk"
  "ablation_dense_trunk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dense_trunk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
