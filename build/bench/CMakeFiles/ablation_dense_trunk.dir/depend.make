# Empty dependencies file for ablation_dense_trunk.
# This may be replaced when dependencies are built.
