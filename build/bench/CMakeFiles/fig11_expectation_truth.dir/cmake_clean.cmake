file(REMOVE_RECURSE
  "CMakeFiles/fig11_expectation_truth.dir/fig11_expectation_truth.cpp.o"
  "CMakeFiles/fig11_expectation_truth.dir/fig11_expectation_truth.cpp.o.d"
  "fig11_expectation_truth"
  "fig11_expectation_truth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_expectation_truth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
