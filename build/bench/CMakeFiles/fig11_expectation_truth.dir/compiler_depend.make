# Empty compiler generated dependencies file for fig11_expectation_truth.
# This may be replaced when dependencies are built.
