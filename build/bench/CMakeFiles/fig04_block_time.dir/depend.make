# Empty dependencies file for fig04_block_time.
# This may be replaced when dependencies are built.
