file(REMOVE_RECURSE
  "CMakeFiles/fig04_block_time.dir/fig04_block_time.cpp.o"
  "CMakeFiles/fig04_block_time.dir/fig04_block_time.cpp.o.d"
  "fig04_block_time"
  "fig04_block_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_block_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
