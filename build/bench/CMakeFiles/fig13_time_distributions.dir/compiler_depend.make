# Empty compiler generated dependencies file for fig13_time_distributions.
# This may be replaced when dependencies are built.
