file(REMOVE_RECURSE
  "CMakeFiles/fig13_time_distributions.dir/fig13_time_distributions.cpp.o"
  "CMakeFiles/fig13_time_distributions.dir/fig13_time_distributions.cpp.o.d"
  "fig13_time_distributions"
  "fig13_time_distributions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_time_distributions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
