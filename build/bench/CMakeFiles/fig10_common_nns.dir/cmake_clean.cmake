file(REMOVE_RECURSE
  "CMakeFiles/fig10_common_nns.dir/fig10_common_nns.cpp.o"
  "CMakeFiles/fig10_common_nns.dir/fig10_common_nns.cpp.o.d"
  "fig10_common_nns"
  "fig10_common_nns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_common_nns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
