# Empty compiler generated dependencies file for fig10_common_nns.
# This may be replaced when dependencies are built.
