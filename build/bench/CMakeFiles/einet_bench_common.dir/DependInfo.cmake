
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_common.cpp" "bench/CMakeFiles/einet_bench_common.dir/bench_common.cpp.o" "gcc" "bench/CMakeFiles/einet_bench_common.dir/bench_common.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/einet_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/predictor/CMakeFiles/einet_predictor.dir/DependInfo.cmake"
  "/root/repo/build/src/profiling/CMakeFiles/einet_profiling.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/einet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/einet_models.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/einet_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/einet_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/einet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
