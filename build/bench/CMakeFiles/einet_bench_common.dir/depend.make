# Empty dependencies file for einet_bench_common.
# This may be replaced when dependencies are built.
