file(REMOVE_RECURSE
  "CMakeFiles/einet_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/einet_bench_common.dir/bench_common.cpp.o.d"
  "libeinet_bench_common.a"
  "libeinet_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/einet_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
