file(REMOVE_RECURSE
  "libeinet_bench_common.a"
)
