# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_table[1]_include.cmake")
include("/root/repo/build/tests/test_tensor[1]_include.cmake")
include("/root/repo/build/tests/test_layers[1]_include.cmake")
include("/root/repo/build/tests/test_loss_optim[1]_include.cmake")
include("/root/repo/build/tests/test_serialize[1]_include.cmake")
include("/root/repo/build/tests/test_dataset[1]_include.cmake")
include("/root/repo/build/tests/test_exit_plan[1]_include.cmake")
include("/root/repo/build/tests/test_time_distribution[1]_include.cmake")
include("/root/repo/build/tests/test_expectation[1]_include.cmake")
include("/root/repo/build/tests/test_search[1]_include.cmake")
include("/root/repo/build/tests/test_profiles[1]_include.cmake")
include("/root/repo/build/tests/test_multiexit[1]_include.cmake")
include("/root/repo/build/tests/test_predictor[1]_include.cmake")
include("/root/repo/build/tests/test_elastic_engine[1]_include.cmake")
include("/root/repo/build/tests/test_evaluator[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_runtime_properties[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
