# Empty compiler generated dependencies file for test_exit_plan.
# This may be replaced when dependencies are built.
