file(REMOVE_RECURSE
  "CMakeFiles/test_exit_plan.dir/test_exit_plan.cpp.o"
  "CMakeFiles/test_exit_plan.dir/test_exit_plan.cpp.o.d"
  "test_exit_plan"
  "test_exit_plan.pdb"
  "test_exit_plan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exit_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
