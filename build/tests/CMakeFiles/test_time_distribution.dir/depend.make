# Empty dependencies file for test_time_distribution.
# This may be replaced when dependencies are built.
