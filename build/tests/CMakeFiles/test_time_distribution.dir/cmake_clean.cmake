file(REMOVE_RECURSE
  "CMakeFiles/test_time_distribution.dir/test_time_distribution.cpp.o"
  "CMakeFiles/test_time_distribution.dir/test_time_distribution.cpp.o.d"
  "test_time_distribution"
  "test_time_distribution.pdb"
  "test_time_distribution[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_time_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
