# Empty compiler generated dependencies file for test_multiexit.
# This may be replaced when dependencies are built.
