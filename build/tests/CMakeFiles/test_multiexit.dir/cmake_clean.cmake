file(REMOVE_RECURSE
  "CMakeFiles/test_multiexit.dir/test_multiexit.cpp.o"
  "CMakeFiles/test_multiexit.dir/test_multiexit.cpp.o.d"
  "test_multiexit"
  "test_multiexit.pdb"
  "test_multiexit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multiexit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
