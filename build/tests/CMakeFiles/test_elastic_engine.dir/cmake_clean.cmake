file(REMOVE_RECURSE
  "CMakeFiles/test_elastic_engine.dir/test_elastic_engine.cpp.o"
  "CMakeFiles/test_elastic_engine.dir/test_elastic_engine.cpp.o.d"
  "test_elastic_engine"
  "test_elastic_engine.pdb"
  "test_elastic_engine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_elastic_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
