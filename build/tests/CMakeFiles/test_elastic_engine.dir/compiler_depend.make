# Empty compiler generated dependencies file for test_elastic_engine.
# This may be replaced when dependencies are built.
