# Empty dependencies file for test_expectation.
# This may be replaced when dependencies are built.
