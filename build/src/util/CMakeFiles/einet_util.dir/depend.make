# Empty dependencies file for einet_util.
# This may be replaced when dependencies are built.
