file(REMOVE_RECURSE
  "CMakeFiles/einet_util.dir/logging.cpp.o"
  "CMakeFiles/einet_util.dir/logging.cpp.o.d"
  "CMakeFiles/einet_util.dir/stats.cpp.o"
  "CMakeFiles/einet_util.dir/stats.cpp.o.d"
  "CMakeFiles/einet_util.dir/table.cpp.o"
  "CMakeFiles/einet_util.dir/table.cpp.o.d"
  "libeinet_util.a"
  "libeinet_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/einet_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
