file(REMOVE_RECURSE
  "libeinet_util.a"
)
