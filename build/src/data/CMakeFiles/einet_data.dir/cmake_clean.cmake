file(REMOVE_RECURSE
  "CMakeFiles/einet_data.dir/dataset.cpp.o"
  "CMakeFiles/einet_data.dir/dataset.cpp.o.d"
  "CMakeFiles/einet_data.dir/synthetic.cpp.o"
  "CMakeFiles/einet_data.dir/synthetic.cpp.o.d"
  "libeinet_data.a"
  "libeinet_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/einet_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
