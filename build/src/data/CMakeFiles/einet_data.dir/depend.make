# Empty dependencies file for einet_data.
# This may be replaced when dependencies are built.
