file(REMOVE_RECURSE
  "libeinet_data.a"
)
