file(REMOVE_RECURSE
  "CMakeFiles/einet_profiling.dir/calibration.cpp.o"
  "CMakeFiles/einet_profiling.dir/calibration.cpp.o.d"
  "CMakeFiles/einet_profiling.dir/platform.cpp.o"
  "CMakeFiles/einet_profiling.dir/platform.cpp.o.d"
  "CMakeFiles/einet_profiling.dir/profiler.cpp.o"
  "CMakeFiles/einet_profiling.dir/profiler.cpp.o.d"
  "CMakeFiles/einet_profiling.dir/profiles.cpp.o"
  "CMakeFiles/einet_profiling.dir/profiles.cpp.o.d"
  "libeinet_profiling.a"
  "libeinet_profiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/einet_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
