
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/profiling/calibration.cpp" "src/profiling/CMakeFiles/einet_profiling.dir/calibration.cpp.o" "gcc" "src/profiling/CMakeFiles/einet_profiling.dir/calibration.cpp.o.d"
  "/root/repo/src/profiling/platform.cpp" "src/profiling/CMakeFiles/einet_profiling.dir/platform.cpp.o" "gcc" "src/profiling/CMakeFiles/einet_profiling.dir/platform.cpp.o.d"
  "/root/repo/src/profiling/profiler.cpp" "src/profiling/CMakeFiles/einet_profiling.dir/profiler.cpp.o" "gcc" "src/profiling/CMakeFiles/einet_profiling.dir/profiler.cpp.o.d"
  "/root/repo/src/profiling/profiles.cpp" "src/profiling/CMakeFiles/einet_profiling.dir/profiles.cpp.o" "gcc" "src/profiling/CMakeFiles/einet_profiling.dir/profiles.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/models/CMakeFiles/einet_models.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/einet_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/einet_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/einet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
