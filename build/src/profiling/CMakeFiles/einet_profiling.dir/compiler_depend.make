# Empty compiler generated dependencies file for einet_profiling.
# This may be replaced when dependencies are built.
