file(REMOVE_RECURSE
  "libeinet_profiling.a"
)
