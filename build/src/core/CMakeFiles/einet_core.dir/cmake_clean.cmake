file(REMOVE_RECURSE
  "CMakeFiles/einet_core.dir/exit_plan.cpp.o"
  "CMakeFiles/einet_core.dir/exit_plan.cpp.o.d"
  "CMakeFiles/einet_core.dir/expectation.cpp.o"
  "CMakeFiles/einet_core.dir/expectation.cpp.o.d"
  "CMakeFiles/einet_core.dir/search.cpp.o"
  "CMakeFiles/einet_core.dir/search.cpp.o.d"
  "CMakeFiles/einet_core.dir/time_distribution.cpp.o"
  "CMakeFiles/einet_core.dir/time_distribution.cpp.o.d"
  "libeinet_core.a"
  "libeinet_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/einet_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
