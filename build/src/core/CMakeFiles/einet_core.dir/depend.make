# Empty dependencies file for einet_core.
# This may be replaced when dependencies are built.
