file(REMOVE_RECURSE
  "libeinet_core.a"
)
