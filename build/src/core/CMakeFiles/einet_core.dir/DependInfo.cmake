
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/exit_plan.cpp" "src/core/CMakeFiles/einet_core.dir/exit_plan.cpp.o" "gcc" "src/core/CMakeFiles/einet_core.dir/exit_plan.cpp.o.d"
  "/root/repo/src/core/expectation.cpp" "src/core/CMakeFiles/einet_core.dir/expectation.cpp.o" "gcc" "src/core/CMakeFiles/einet_core.dir/expectation.cpp.o.d"
  "/root/repo/src/core/search.cpp" "src/core/CMakeFiles/einet_core.dir/search.cpp.o" "gcc" "src/core/CMakeFiles/einet_core.dir/search.cpp.o.d"
  "/root/repo/src/core/time_distribution.cpp" "src/core/CMakeFiles/einet_core.dir/time_distribution.cpp.o" "gcc" "src/core/CMakeFiles/einet_core.dir/time_distribution.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/einet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
