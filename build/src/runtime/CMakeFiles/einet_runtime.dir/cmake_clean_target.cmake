file(REMOVE_RECURSE
  "libeinet_runtime.a"
)
