# Empty dependencies file for einet_runtime.
# This may be replaced when dependencies are built.
