file(REMOVE_RECURSE
  "CMakeFiles/einet_runtime.dir/elastic_engine.cpp.o"
  "CMakeFiles/einet_runtime.dir/elastic_engine.cpp.o.d"
  "CMakeFiles/einet_runtime.dir/evaluator.cpp.o"
  "CMakeFiles/einet_runtime.dir/evaluator.cpp.o.d"
  "CMakeFiles/einet_runtime.dir/live_engine.cpp.o"
  "CMakeFiles/einet_runtime.dir/live_engine.cpp.o.d"
  "libeinet_runtime.a"
  "libeinet_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/einet_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
