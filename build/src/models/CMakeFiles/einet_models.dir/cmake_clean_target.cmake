file(REMOVE_RECURSE
  "libeinet_models.a"
)
