# Empty dependencies file for einet_models.
# This may be replaced when dependencies are built.
