file(REMOVE_RECURSE
  "CMakeFiles/einet_models.dir/backbones.cpp.o"
  "CMakeFiles/einet_models.dir/backbones.cpp.o.d"
  "CMakeFiles/einet_models.dir/branch.cpp.o"
  "CMakeFiles/einet_models.dir/branch.cpp.o.d"
  "CMakeFiles/einet_models.dir/multiexit.cpp.o"
  "CMakeFiles/einet_models.dir/multiexit.cpp.o.d"
  "CMakeFiles/einet_models.dir/trainer.cpp.o"
  "CMakeFiles/einet_models.dir/trainer.cpp.o.d"
  "libeinet_models.a"
  "libeinet_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/einet_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
