file(REMOVE_RECURSE
  "CMakeFiles/einet_nn.dir/activations.cpp.o"
  "CMakeFiles/einet_nn.dir/activations.cpp.o.d"
  "CMakeFiles/einet_nn.dir/batchnorm.cpp.o"
  "CMakeFiles/einet_nn.dir/batchnorm.cpp.o.d"
  "CMakeFiles/einet_nn.dir/conv2d.cpp.o"
  "CMakeFiles/einet_nn.dir/conv2d.cpp.o.d"
  "CMakeFiles/einet_nn.dir/dense.cpp.o"
  "CMakeFiles/einet_nn.dir/dense.cpp.o.d"
  "CMakeFiles/einet_nn.dir/elementwise.cpp.o"
  "CMakeFiles/einet_nn.dir/elementwise.cpp.o.d"
  "CMakeFiles/einet_nn.dir/linear.cpp.o"
  "CMakeFiles/einet_nn.dir/linear.cpp.o.d"
  "CMakeFiles/einet_nn.dir/loss.cpp.o"
  "CMakeFiles/einet_nn.dir/loss.cpp.o.d"
  "CMakeFiles/einet_nn.dir/optimizer.cpp.o"
  "CMakeFiles/einet_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/einet_nn.dir/pooling.cpp.o"
  "CMakeFiles/einet_nn.dir/pooling.cpp.o.d"
  "CMakeFiles/einet_nn.dir/sequential.cpp.o"
  "CMakeFiles/einet_nn.dir/sequential.cpp.o.d"
  "CMakeFiles/einet_nn.dir/serialize.cpp.o"
  "CMakeFiles/einet_nn.dir/serialize.cpp.o.d"
  "CMakeFiles/einet_nn.dir/softmax.cpp.o"
  "CMakeFiles/einet_nn.dir/softmax.cpp.o.d"
  "CMakeFiles/einet_nn.dir/tensor.cpp.o"
  "CMakeFiles/einet_nn.dir/tensor.cpp.o.d"
  "libeinet_nn.a"
  "libeinet_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/einet_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
