# Empty dependencies file for einet_nn.
# This may be replaced when dependencies are built.
