file(REMOVE_RECURSE
  "libeinet_nn.a"
)
