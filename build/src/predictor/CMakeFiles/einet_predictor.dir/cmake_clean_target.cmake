file(REMOVE_RECURSE
  "libeinet_predictor.a"
)
