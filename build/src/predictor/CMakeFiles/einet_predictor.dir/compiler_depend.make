# Empty compiler generated dependencies file for einet_predictor.
# This may be replaced when dependencies are built.
