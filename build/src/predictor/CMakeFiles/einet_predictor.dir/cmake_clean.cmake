file(REMOVE_RECURSE
  "CMakeFiles/einet_predictor.dir/activation_cache.cpp.o"
  "CMakeFiles/einet_predictor.dir/activation_cache.cpp.o.d"
  "CMakeFiles/einet_predictor.dir/cs_predictor.cpp.o"
  "CMakeFiles/einet_predictor.dir/cs_predictor.cpp.o.d"
  "libeinet_predictor.a"
  "libeinet_predictor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/einet_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
