# Empty dependencies file for streaming_tasks.
# This may be replaced when dependencies are built.
