file(REMOVE_RECURSE
  "CMakeFiles/streaming_tasks.dir/streaming_tasks.cpp.o"
  "CMakeFiles/streaming_tasks.dir/streaming_tasks.cpp.o.d"
  "streaming_tasks"
  "streaming_tasks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_tasks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
