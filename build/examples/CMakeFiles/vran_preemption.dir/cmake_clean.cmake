file(REMOVE_RECURSE
  "CMakeFiles/vran_preemption.dir/vran_preemption.cpp.o"
  "CMakeFiles/vran_preemption.dir/vran_preemption.cpp.o.d"
  "vran_preemption"
  "vran_preemption.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vran_preemption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
