# Empty dependencies file for vran_preemption.
# This may be replaced when dependencies are built.
