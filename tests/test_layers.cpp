#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/gemm.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"
#include "nn/sequential.hpp"
#include "test_util.hpp"

namespace einet::nn {
namespace {

using einet::testing::check_input_gradient;
using einet::testing::check_param_gradients;

/// Random input with entries bounded away from 0 so ReLU/MaxPool kinks do not
/// flip under finite-difference perturbation.
Tensor safe_input(const Shape& shape, util::Rng& rng) {
  Tensor x = Tensor::uniform(shape, -1.0f, 1.0f, rng);
  for (std::size_t i = 0; i < x.numel(); ++i)
    x[i] += (x[i] >= 0.0f ? 0.05f : -0.05f);
  return x;
}

TEST(Linear, ForwardMatchesManualMatvec) {
  util::Rng rng{1};
  Linear l{2, 3, rng};
  l.weight().value = Tensor{{3, 2}, {1, 2, 3, 4, 5, 6}};
  l.bias().value = Tensor{{3}, {0.5f, -0.5f, 0.0f}};
  Tensor x{{1, 2}, {10, 20}};
  const Tensor y = l.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 1 * 10 + 2 * 20 + 0.5f);
  EXPECT_FLOAT_EQ(y[1], 3 * 10 + 4 * 20 - 0.5f);
  EXPECT_FLOAT_EQ(y[2], 5 * 10 + 6 * 20);
}

TEST(Linear, GradientsMatchNumeric) {
  util::Rng rng{2};
  Linear l{5, 4, rng};
  check_input_gradient(l, Tensor::uniform({3, 5}, -1, 1, rng), rng);
  check_param_gradients(l, Tensor::uniform({3, 5}, -1, 1, rng), rng);
}

TEST(Linear, RejectsBadShapes) {
  util::Rng rng{3};
  Linear l{4, 2, rng};
  EXPECT_THROW(l.forward(Tensor{{2, 3}}, false), std::invalid_argument);
  EXPECT_THROW((Linear{0, 2, rng}), std::invalid_argument);
  EXPECT_THROW(l.backward(Tensor{{2, 2}}), std::logic_error);
}

TEST(Conv2d, OutShapeAndFlops) {
  util::Rng rng{4};
  Conv2d c{{.in_channels = 3, .out_channels = 8, .kernel = 3, .stride = 1,
            .padding = 1},
           rng};
  EXPECT_EQ(c.out_shape({2, 3, 16, 16}), (Shape{2, 8, 16, 16}));
  EXPECT_EQ(c.flops({1, 3, 16, 16}), 8u * 16 * 16 * 3 * 9);
  Conv2d s{{.in_channels = 3, .out_channels = 4, .kernel = 3, .stride = 2,
            .padding = 1},
           rng};
  EXPECT_EQ(s.out_shape({1, 3, 16, 16}), (Shape{1, 4, 8, 8}));
}

TEST(Conv2d, IdentityKernelPassesThrough) {
  util::Rng rng{5};
  Conv2d c{{.in_channels = 1, .out_channels = 1, .kernel = 3, .stride = 1,
            .padding = 1},
           rng};
  c.weight().value.zero();
  c.weight().value[4] = 1.0f;  // centre tap
  c.bias().value.zero();
  Tensor x = Tensor::uniform({1, 1, 5, 5}, -1, 1, rng);
  const Tensor y = c.forward(x, false);
  for (std::size_t i = 0; i < x.numel(); ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
}

/// Direct (non-im2col) convolution oracle for forward-parity checks against
/// the GEMM-backed kernel.
Tensor direct_conv(const Tensor& x, const Conv2dSpec& spec, const Tensor& wgt,
                   const Tensor& bias, const Shape& out_shape) {
  const std::size_t n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const std::size_t oh = out_shape[2], ow = out_shape[3];
  Tensor y{out_shape};
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t oc = 0; oc < spec.out_channels; ++oc)
      for (std::size_t oi = 0; oi < oh; ++oi)
        for (std::size_t oj = 0; oj < ow; ++oj) {
          double acc = bias[oc];
          for (std::size_t c = 0; c < spec.in_channels; ++c)
            for (std::size_t ki = 0; ki < spec.kernel; ++ki)
              for (std::size_t kj = 0; kj < spec.kernel; ++kj) {
                const long ii = static_cast<long>(oi * spec.stride + ki) -
                                static_cast<long>(spec.padding);
                const long jj = static_cast<long>(oj * spec.stride + kj) -
                                static_cast<long>(spec.padding);
                if (ii < 0 || jj < 0 || ii >= static_cast<long>(h) ||
                    jj >= static_cast<long>(w))
                  continue;
                const float xv = x.at(i, c, static_cast<std::size_t>(ii),
                                      static_cast<std::size_t>(jj));
                const float wv =
                    wgt.at(oc, (c * spec.kernel + ki) * spec.kernel + kj);
                acc += static_cast<double>(xv) * wv;
              }
          y.at(i, oc, oi, oj) = static_cast<float>(acc);
        }
  return y;
}

TEST(Conv2d, ForwardMatchesDirectConvolution) {
  util::Rng rng{30};
  const Conv2dSpec specs[] = {
      {.in_channels = 3, .out_channels = 7, .kernel = 3, .stride = 1,
       .padding = 1},
      {.in_channels = 2, .out_channels = 5, .kernel = 3, .stride = 2,
       .padding = 0},
      {.in_channels = 4, .out_channels = 6, .kernel = 1, .stride = 1,
       .padding = 0},
  };
  for (const auto& spec : specs) {
    Conv2d conv{spec, rng};
    const Tensor x = Tensor::uniform({2, spec.in_channels, 9, 9}, -1, 1, rng);
    const Tensor got = conv.forward(x, false);
    const Tensor want = direct_conv(x, spec, conv.weight().value,
                                    conv.bias().value, got.shape());
    ASSERT_EQ(got.shape(), want.shape());
    // <= 1e-5 relative with a unit magnitude floor: the oracle accumulates
    // in double, so near-cancelled outputs differ by float rounding of the
    // ~patch-length reduction, not by kernel behaviour.
    for (std::size_t i = 0; i < got.numel(); ++i) {
      const double scale = std::max(
          {1.0, std::abs(static_cast<double>(got[i])),
           std::abs(static_cast<double>(want[i]))});
      ASSERT_LT(std::abs(static_cast<double>(got[i]) - want[i]) / scale, 1e-5)
          << "mismatch at " << i << " for " << conv.name();
    }
  }
}

TEST(Conv2d, ForwardBitIdenticalAcrossThreadCounts) {
  const std::size_t saved = gemm_threads();
  util::Rng rng{31};
  Conv2d conv{{.in_channels = 3, .out_channels = 16, .kernel = 3, .stride = 1,
               .padding = 1},
              rng};
  const Tensor x = Tensor::uniform({3, 3, 16, 16}, -1, 1, rng);
  set_gemm_threads(1);
  const Tensor y1 = conv.forward(x, false);
  set_gemm_threads(4);
  const Tensor y4 = conv.forward(x, false);
  set_gemm_threads(saved);
  ASSERT_EQ(y1.shape(), y4.shape());
  EXPECT_EQ(0, std::memcmp(y1.raw(), y4.raw(), y1.numel() * sizeof(float)));
}

TEST(Linear, ForwardBitIdenticalAcrossThreadCounts) {
  const std::size_t saved = gemm_threads();
  util::Rng rng{32};
  Linear l{96, 64, rng};
  const Tensor x = Tensor::uniform({5, 96}, -1, 1, rng);
  set_gemm_threads(1);
  const Tensor y1 = l.forward(x, false);
  set_gemm_threads(4);
  const Tensor y4 = l.forward(x, false);
  set_gemm_threads(saved);
  EXPECT_EQ(0, std::memcmp(y1.raw(), y4.raw(), y1.numel() * sizeof(float)));
}

TEST(Conv2d, GradientsMatchNumeric) {
  util::Rng rng{6};
  Conv2d c{{.in_channels = 2, .out_channels = 3, .kernel = 3, .stride = 1,
            .padding = 1},
           rng};
  const Tensor x = Tensor::uniform({2, 2, 5, 5}, -1, 1, rng);
  check_input_gradient(c, x, rng);
  check_param_gradients(c, x, rng);
}

TEST(Conv2d, StridedGradientsMatchNumeric) {
  util::Rng rng{7};
  Conv2d c{{.in_channels = 2, .out_channels = 2, .kernel = 3, .stride = 2,
            .padding = 1},
           rng};
  const Tensor x = Tensor::uniform({1, 2, 6, 6}, -1, 1, rng);
  check_input_gradient(c, x, rng);
  check_param_gradients(c, x, rng);
}

TEST(ReLU, ForwardClampsNegatives) {
  ReLU r;
  Tensor x{{4}, {-1, 0, 2, -3}};
  const Tensor y = r.forward(x, false);
  EXPECT_EQ(y[0], 0.0f);
  EXPECT_EQ(y[2], 2.0f);
  EXPECT_EQ(y[3], 0.0f);
}

TEST(ReLU, GradientMatchesNumeric) {
  util::Rng rng{8};
  ReLU r;
  check_input_gradient(r, safe_input({2, 10}, rng), rng);
}

TEST(Dropout, IdentityAtEval) {
  util::Rng rng{9};
  Dropout d{0.5, rng};
  const Tensor x = Tensor::uniform({100}, -1, 1, rng);
  const Tensor y = d.forward(x, /*train=*/false);
  for (std::size_t i = 0; i < x.numel(); ++i) EXPECT_EQ(y[i], x[i]);
}

TEST(Dropout, TrainPreservesExpectedValue) {
  util::Rng rng{10};
  Dropout d{0.3, rng};
  Tensor x{{20000}, 1.0f};
  const Tensor y = d.forward(x, /*train=*/true);
  double sum = 0.0;
  std::size_t zeros = 0;
  for (std::size_t i = 0; i < y.numel(); ++i) {
    sum += y[i];
    if (y[i] == 0.0f) ++zeros;
  }
  EXPECT_NEAR(sum / static_cast<double>(y.numel()), 1.0, 0.05);
  EXPECT_NEAR(static_cast<double>(zeros) / static_cast<double>(y.numel()), 0.3,
              0.02);
}

TEST(Dropout, RejectsInvalidProbability) {
  util::Rng rng{11};
  EXPECT_THROW((Dropout{1.0, rng}), std::invalid_argument);
  EXPECT_THROW((Dropout{-0.1, rng}), std::invalid_argument);
}

TEST(Flatten, RoundTripsShape) {
  util::Rng rng{12};
  Flatten f;
  Tensor x = Tensor::uniform({2, 3, 4, 5}, -1, 1, rng);
  Tensor y = f.forward(x, true);
  EXPECT_EQ(y.shape(), (Shape{2, 60}));
  const Tensor back = f.backward(y);
  EXPECT_EQ(back.shape(), x.shape());
}

TEST(MaxPool2d, ForwardPicksMaxima) {
  MaxPool2d p{2};
  Tensor x{{1, 1, 2, 2}, {1, 2, 3, 4}};
  const Tensor y = p.forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 1, 1}));
  EXPECT_EQ(y[0], 4.0f);
}

TEST(MaxPool2d, GradientRoutesToArgmax) {
  MaxPool2d p{2};
  Tensor x{{1, 1, 2, 2}, {1, 2, 3, 4}};
  (void)p.forward(x, true);
  const Tensor g = p.backward(Tensor{{1, 1, 1, 1}, {5.0f}});
  EXPECT_EQ(g[3], 5.0f);
  EXPECT_EQ(g[0], 0.0f);
}

// Regression: best_idx was seeded with *global* flat index 0, so an all-NaN
// (or all--inf) window scattered its gradient into element 0 of the whole
// input tensor. The window-seeded NaN-safe comparison keeps every window's
// gradient inside that window.
TEST(MaxPool2d, NaNPlaneRoutesEachGradientInsideItsWindow) {
  MaxPool2d p{2};
  const float nan = std::numeric_limits<float>::quiet_NaN();
  Tensor x{{1, 1, 4, 4}, nan};
  const Tensor y = p.forward(x, true);
  for (std::size_t i = 0; i < y.numel(); ++i) EXPECT_TRUE(std::isnan(y[i]));
  const Tensor g = p.backward(Tensor{{1, 1, 2, 2}, 1.0f});
  float total = 0.0f;
  for (std::size_t i = 0; i < g.numel(); ++i) total += g[i];
  EXPECT_FLOAT_EQ(total, 4.0f);  // nothing lost, nothing duplicated
  // The seed bug piled all four window gradients onto element 0.
  EXPECT_LT(g[0], 4.0f);
  // Each window's unit gradient lands inside that window's 2x2 block.
  const std::size_t windows[4][4] = {{0, 1, 4, 5},   {2, 3, 6, 7},
                                     {8, 9, 12, 13}, {10, 11, 14, 15}};
  for (const auto& win : windows) {
    float in_window = 0.0f;
    for (std::size_t idx : win) in_window += g[idx];
    EXPECT_FLOAT_EQ(in_window, 1.0f);
  }
}

TEST(MaxPool2d, AllNegativeInfinityWindowStaysLocal) {
  MaxPool2d p{2};
  const float inf = std::numeric_limits<float>::infinity();
  Tensor x{{1, 1, 2, 4}, -inf};
  x[2] = 3.0f;  // second window has one finite max
  const Tensor y = p.forward(x, true);
  EXPECT_EQ(y[0], -inf);
  EXPECT_FLOAT_EQ(y[1], 3.0f);
  const Tensor g = p.backward(Tensor{{1, 1, 1, 2}, {1.0f, 1.0f}});
  // Window 0's gradient stays in {0, 1, 4, 5}; the seed sent it to index 0
  // only by accident of the sentinel. Window 1 routes to the finite max.
  float w0 = g[0] + g[1] + g[4] + g[5];
  EXPECT_FLOAT_EQ(w0, 1.0f);
  EXPECT_FLOAT_EQ(g[2], 1.0f);
}

TEST(MaxPool2d, PartialNaNWindowKeepsFiniteCandidates) {
  MaxPool2d p{2};
  const float nan = std::numeric_limits<float>::quiet_NaN();
  Tensor x{{1, 1, 2, 2}, {nan, 2.0f, 1.0f, -3.0f}};
  const Tensor y = p.forward(x, true);
  // A leading NaN must not poison the whole window: later finite values win.
  EXPECT_FLOAT_EQ(y[0], 2.0f);
  const Tensor g = p.backward(Tensor{{1, 1, 1, 1}, {5.0f}});
  EXPECT_FLOAT_EQ(g[1], 5.0f);
  EXPECT_EQ(g[0], 0.0f);
}

TEST(MaxPool2d, GradientMatchesNumeric) {
  util::Rng rng{13};
  MaxPool2d p{2};
  check_input_gradient(p, safe_input({2, 2, 4, 4}, rng), rng);
}

TEST(AvgPool2d, ForwardAverages) {
  AvgPool2d p{2};
  Tensor x{{1, 1, 2, 2}, {1, 2, 3, 4}};
  EXPECT_FLOAT_EQ(p.forward(x, false)[0], 2.5f);
}

TEST(AvgPool2d, GradientMatchesNumeric) {
  util::Rng rng{14};
  AvgPool2d p{2};
  check_input_gradient(p, Tensor::uniform({2, 2, 4, 4}, -1, 1, rng), rng);
}

TEST(GlobalAvgPool, ReducesSpatialDims) {
  GlobalAvgPool p;
  Tensor x{{1, 2, 2, 2}, {1, 2, 3, 4, 10, 20, 30, 40}};
  const Tensor y = p.forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{1, 2}));
  EXPECT_FLOAT_EQ(y[0], 2.5f);
  EXPECT_FLOAT_EQ(y[1], 25.0f);
}

TEST(GlobalAvgPool, GradientMatchesNumeric) {
  util::Rng rng{15};
  GlobalAvgPool p;
  check_input_gradient(p, Tensor::uniform({2, 3, 4, 4}, -1, 1, rng), rng);
}

TEST(BatchNorm2d, NormalisesBatchStatistics) {
  util::Rng rng{16};
  BatchNorm2d bn{3};
  const Tensor x = Tensor::uniform({4, 3, 5, 5}, -2, 5, rng);
  const Tensor y = bn.forward(x, /*train=*/true);
  // Per channel the normalised output has ~zero mean and ~unit variance.
  for (std::size_t c = 0; c < 3; ++c) {
    double mean = 0.0, var = 0.0;
    for (std::size_t n = 0; n < 4; ++n)
      for (std::size_t i = 0; i < 25; ++i)
        mean += y[(n * 3 + c) * 25 + i];
    mean /= 100.0;
    for (std::size_t n = 0; n < 4; ++n)
      for (std::size_t i = 0; i < 25; ++i) {
        const double d = y[(n * 3 + c) * 25 + i] - mean;
        var += d * d;
      }
    var /= 100.0;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(BatchNorm2d, GradientsMatchNumeric) {
  util::Rng rng{17};
  BatchNorm2d bn{2};
  const Tensor x = Tensor::uniform({3, 2, 4, 4}, -1, 1, rng);
  check_input_gradient(bn, x, rng, /*tol=*/0.08);
  check_param_gradients(bn, x, rng, /*tol=*/0.08);
}

TEST(BatchNorm2d, EvalUsesRunningStats) {
  util::Rng rng{18};
  BatchNorm2d bn{1};
  // Train on many batches so the running estimates converge.
  for (int i = 0; i < 200; ++i)
    (void)bn.forward(Tensor::uniform({8, 1, 3, 3}, 2.0f, 4.0f, rng), true);
  // Eval on a very different input: output should be normalised by the
  // *running* statistics (mean ~3), not the eval batch's.
  const Tensor y = bn.forward(Tensor{{1, 1, 3, 3}, 3.0f}, false);
  for (std::size_t i = 0; i < y.numel(); ++i) EXPECT_NEAR(y[i], 0.0f, 0.15f);
}

TEST(Sequential, ChainsForwardAndBackward) {
  util::Rng rng{19};
  Sequential seq;
  seq.emplace<Linear>(6, 8, rng);
  seq.emplace<ReLU>();
  seq.emplace<Linear>(8, 3, rng);
  EXPECT_EQ(seq.out_shape({2, 6}), (Shape{2, 3}));
  EXPECT_EQ(seq.params().size(), 4u);
  const Tensor x = safe_input({2, 6}, rng);
  check_input_gradient(seq, x, rng);
  check_param_gradients(seq, x, rng);
}

TEST(Sequential, FlopsAccumulate) {
  util::Rng rng{20};
  Sequential seq;
  seq.emplace<Linear>(4, 5, rng);
  seq.emplace<Linear>(5, 2, rng);
  EXPECT_EQ(seq.flops({1, 4}), 1u * 5 * 4 + 1u * 2 * 5);
}

TEST(Residual, IdentitySkipAddsInput) {
  util::Rng rng{21};
  auto body = std::make_unique<Sequential>();
  body->emplace<Conv2d>(
      Conv2dSpec{.in_channels = 2, .out_channels = 2, .kernel = 3,
                 .stride = 1, .padding = 1},
      rng);
  Residual res{std::move(body), nullptr};
  EXPECT_EQ(res.out_shape({1, 2, 4, 4}), (Shape{1, 2, 4, 4}));
  const Tensor x = Tensor::uniform({1, 2, 4, 4}, -1, 1, rng);
  check_input_gradient(res, x, rng);
}

TEST(Residual, ProjectionHandlesChannelChange) {
  util::Rng rng{22};
  auto body = std::make_unique<Sequential>();
  body->emplace<Conv2d>(
      Conv2dSpec{.in_channels = 2, .out_channels = 4, .kernel = 3,
                 .stride = 2, .padding = 1},
      rng);
  auto proj = std::make_unique<Conv2d>(
      Conv2dSpec{.in_channels = 2, .out_channels = 4, .kernel = 1, .stride = 2,
                 .padding = 0},
      rng);
  Residual res{std::move(body), std::move(proj)};
  EXPECT_EQ(res.out_shape({1, 2, 8, 8}), (Shape{1, 4, 4, 4}));
  // Bias the units away from zero so the output ReLU's kink does not flip
  // under finite-difference perturbation.
  for (auto* prm : res.params())
    if (prm->name == "bias")
      for (std::size_t i = 0; i < prm->value.numel(); ++i)
        prm->value[i] = 0.4f;
  const Tensor x = Tensor::uniform({1, 2, 8, 8}, -1, 1, rng);
  check_input_gradient(res, x, rng, /*tol=*/0.08, /*eps=*/5e-3f);
  check_param_gradients(res, x, rng, /*tol=*/0.08, /*eps=*/5e-3f);
}

TEST(Residual, MismatchedShortcutShapeThrows) {
  util::Rng rng{23};
  auto body = std::make_unique<Sequential>();
  body->emplace<Conv2d>(
      Conv2dSpec{.in_channels = 2, .out_channels = 4, .kernel = 3,
                 .stride = 1, .padding = 1},
      rng);
  Residual res{std::move(body), nullptr};  // identity skip: 2 != 4 channels
  EXPECT_THROW(res.out_shape({1, 2, 4, 4}), std::invalid_argument);
}

}  // namespace
}  // namespace einet::nn
