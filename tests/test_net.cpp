// Networking front-end suite (DESIGN.md §9): wire-protocol golden bytes and
// corruption handling (no sockets), loopback round-trips against the
// in-process determinism contract, pipelined out-of-order completion,
// connection limits, graceful drain, and client reconnection through a
// flapping server. Runs TSan-clean under EINET_SANITIZE=thread.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/time_distribution.hpp"
#include "net/client.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "nn/serialize.hpp"
#include "serving/replicate.hpp"
#include "serving/server.hpp"
#include "util/rng.hpp"

namespace einet::net {
namespace {

// ---------------------------------------------------------------- fixtures

profiling::ETProfile tiny_et() {
  profiling::ETProfile et;
  et.model_name = "tiny";
  et.platform_name = "test";
  et.conv_ms = {1.0, 1.0, 1.0, 1.0};
  et.branch_ms = {0.5, 0.5, 0.5, 0.5};
  return et;
}

profiling::CSProfile tiny_cs(std::size_t records, std::uint64_t seed = 7) {
  profiling::CSProfile cs;
  cs.model_name = "tiny";
  cs.dataset_name = "synthetic";
  cs.num_exits = 4;
  util::Rng rng{seed};
  for (std::size_t r = 0; r < records; ++r) {
    profiling::CSRecord rec;
    float conf = rng.uniform_f(0.2f, 0.5f);
    for (std::size_t e = 0; e < cs.num_exits; ++e) {
      conf = std::min(1.0f, conf + rng.uniform_f(0.0f, 0.2f));
      rec.confidence.push_back(conf);
      rec.correct.push_back(rng.bernoulli(conf) ? 1 : 0);
    }
    rec.label = r % 10;
    cs.records.push_back(std::move(rec));
  }
  cs.validate();
  return cs;
}

/// A small predictor-less serving stack plus its TCP front-end.
struct Stack {
  profiling::ETProfile et = tiny_et();
  profiling::CSProfile cs = tiny_cs(16);
  core::UniformExitDistribution dist{et.total_ms()};
  std::unique_ptr<serving::EdgeServer> edge;
  std::unique_ptr<EdgeTcpServer> tcp;

  explicit Stack(std::size_t workers = 2, serving::TaskRunner runner = nullptr,
                 TcpServerConfig net_config = {}) {
    serving::ServerConfig config;
    config.queue_capacity = 1024;
    config.pool.num_workers = workers;
    const auto factory = serving::make_replicated_engine_factory(
        et, nullptr, {}, std::vector<float>(cs.num_exits, 0.5f));
    if (!runner)
      runner = [this](runtime::ElasticEngine& engine,
                      const serving::Task& task, util::Rng&) {
        return engine.run(*task.record, task.deadline_ms, dist);
      };
    edge = std::make_unique<serving::EdgeServer>(et, factory,
                                                 std::move(runner), config);
    tcp = std::make_unique<EdgeTcpServer>(*edge, net_config);
    tcp->start();
  }
  ~Stack() {
    if (tcp) tcp->stop();
    if (edge) edge->shutdown();
  }

  [[nodiscard]] TcpClientConfig client_config() const {
    TcpClientConfig cc;
    cc.port = tcp->port();
    return cc;
  }
};

bool same_outcome(const runtime::InferenceOutcome& x,
                  const runtime::InferenceOutcome& y) {
  // planner_ms is measured wall-clock search time, not part of the
  // deterministic contract; every other field must match bit-for-bit.
  return x.has_result == y.has_result && x.exit_index == y.exit_index &&
         x.correct == y.correct && x.completed == y.completed &&
         x.branches_executed == y.branches_executed &&
         x.searches_run == y.searches_run &&
         std::bit_cast<std::uint64_t>(x.result_time_ms) ==
             std::bit_cast<std::uint64_t>(y.result_time_ms) &&
         std::bit_cast<std::uint64_t>(x.deadline_ms) ==
             std::bit_cast<std::uint64_t>(y.deadline_ms);
}

// ---------------------------------------------------- protocol: pure bytes

TEST(Protocol, RequestGoldenBytes) {
  RequestFrame req;
  req.request_id = 0x0102030405060708ull;
  req.deadline_ms = 1.5;
  req.record.label = 7;
  req.record.confidence = {1.0f, 0.5f};
  req.record.correct = {1, 0};

  const std::vector<std::uint8_t> expected = {
      // header: magic "EINT", version 1, type kRequest, reserved, body len 38
      0x45, 0x49, 0x4E, 0x54, 0x01, 0x01, 0x00, 0x00, 0x26, 0x00, 0x00, 0x00,
      // request_id (u64 LE)
      0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01,
      // deadline 1.5 (f64 LE bit pattern)
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xF8, 0x3F,
      // label (u64 LE)
      0x07, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      // num_exits (u32 LE)
      0x02, 0x00, 0x00, 0x00,
      // confidence 1.0f, 0.5f (f32 LE bit patterns)
      0x00, 0x00, 0x80, 0x3F, 0x00, 0x00, 0x00, 0x3F,
      // correct flags
      0x01, 0x00};
  EXPECT_EQ(encode_request(req), expected);
  // Same message, same bytes: encoding is deterministic.
  EXPECT_EQ(encode_request(req), encode_request(req));
}

TEST(Protocol, RequestRoundTrip) {
  RequestFrame req;
  req.request_id = 42;
  req.deadline_ms = 3.25;
  req.record = tiny_cs(3).records[2];

  const auto bytes = encode_request(req);
  FrameDecoder dec;
  dec.feed(bytes.data(), bytes.size());
  const auto frame = dec.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, FrameType::kRequest);
  const auto back = decode_request(frame->body);
  EXPECT_EQ(back.request_id, 42u);
  EXPECT_EQ(back.deadline_ms, 3.25);
  EXPECT_EQ(back.record.label, req.record.label);
  EXPECT_EQ(back.record.confidence, req.record.confidence);
  EXPECT_EQ(back.record.correct, req.record.correct);
  EXPECT_EQ(dec.buffered_bytes(), 0u);
  EXPECT_FALSE(dec.next().has_value());
}

TEST(Protocol, ResponseRoundTripIncludingUnsetExit) {
  ResponseFrame resp;
  resp.request_id = 9;
  resp.status = serving::SubmitStatus::kShed;
  // Default outcome: exit_index is SIZE_MAX (no result) — must survive the
  // u64 wire trip intact.
  const auto bytes = encode_response(resp);
  FrameDecoder dec;
  dec.feed(bytes.data(), bytes.size());
  const auto frame = dec.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, FrameType::kResponse);
  const auto back = decode_response(frame->body);
  EXPECT_EQ(back.request_id, 9u);
  EXPECT_EQ(back.status, serving::SubmitStatus::kShed);
  EXPECT_TRUE(same_outcome(back.outcome, resp.outcome));
}

TEST(Protocol, ResponseRoundTripFullOutcome) {
  ResponseFrame resp;
  resp.request_id = 77;
  resp.status = serving::SubmitStatus::kQueued;
  resp.outcome.has_result = true;
  resp.outcome.exit_index = 3;
  resp.outcome.correct = true;
  resp.outcome.completed = true;
  resp.outcome.result_time_ms = 4.125;
  resp.outcome.deadline_ms = 6.5;
  resp.outcome.branches_executed = 4;
  resp.outcome.searches_run = 5;
  resp.outcome.planner_ms = 0.25;

  const auto bytes = encode_response(resp);
  FrameDecoder dec;
  dec.feed(bytes.data(), bytes.size());
  const auto back = decode_response(dec.next()->body);
  EXPECT_TRUE(same_outcome(back.outcome, resp.outcome));
  EXPECT_EQ(back.outcome.planner_ms, 0.25);
}

TEST(Protocol, ErrorRoundTrip) {
  ErrorFrame err;
  err.request_id = kNoRequestId;
  err.code = ErrorCode::kServerOverloaded;
  err.message = "connection limit reached";
  const auto bytes = encode_error(err);
  FrameDecoder dec;
  dec.feed(bytes.data(), bytes.size());
  const auto frame = dec.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, FrameType::kError);
  const auto back = decode_error(frame->body);
  EXPECT_EQ(back.request_id, kNoRequestId);
  EXPECT_EQ(back.code, ErrorCode::kServerOverloaded);
  EXPECT_EQ(back.message, "connection limit reached");
}

TEST(Protocol, DecoderReassemblesFragmentedStream) {
  RequestFrame a;
  a.request_id = 1;
  a.record.confidence = {0.5f};
  a.record.correct = {1};
  RequestFrame b = a;
  b.request_id = 2;

  auto bytes = encode_request(a);
  const auto more = encode_request(b);
  bytes.insert(bytes.end(), more.begin(), more.end());

  FrameDecoder dec;
  std::vector<std::uint64_t> seen;
  for (const std::uint8_t byte : bytes) {  // worst case: 1 byte per feed
    dec.feed(&byte, 1);
    while (const auto frame = dec.next())
      seen.push_back(decode_request(frame->body).request_id);
  }
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{1, 2}));
  EXPECT_EQ(dec.buffered_bytes(), 0u);
}

TEST(Protocol, TruncatedBodyThrowsMalformed) {
  RequestFrame req;
  req.record.confidence = {0.5f, 0.6f};
  req.record.correct = {1, 0};
  auto bytes = encode_request(req);
  // Strip the header, then chop the body: every prefix must throw, never
  // read out of bounds, never succeed.
  std::vector<std::uint8_t> body{bytes.begin() +
                                     static_cast<std::ptrdiff_t>(kHeaderBytes),
                                 bytes.end()};
  for (std::size_t n = 0; n < body.size(); ++n) {
    const std::vector<std::uint8_t> prefix{body.begin(),
                                           body.begin() +
                                               static_cast<std::ptrdiff_t>(n)};
    EXPECT_THROW((void)decode_request(prefix), ProtocolError) << n;
  }
  // Trailing garbage is inconsistent with the declared exit count: rejected.
  body.push_back(0x00);
  EXPECT_THROW((void)decode_request(body), ProtocolError);
}

TEST(Protocol, BadMagicPoisonsDecoder) {
  auto bytes = encode_request(RequestFrame{});
  bytes[0] = 'X';
  FrameDecoder dec;
  try {
    dec.feed(bytes.data(), bytes.size());
    (void)dec.next();
    FAIL() << "bad magic accepted";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kBadMagic);
  }
  EXPECT_TRUE(dec.poisoned());
}

TEST(Protocol, BadVersionAndTypeRejected) {
  {
    auto bytes = encode_request(RequestFrame{});
    bytes[4] = kWireVersion + 1;
    FrameDecoder dec;
    try {
      dec.feed(bytes.data(), bytes.size());
      (void)dec.next();
      FAIL() << "bad version accepted";
    } catch (const ProtocolError& e) {
      EXPECT_EQ(e.code(), ErrorCode::kBadVersion);
    }
  }
  {
    auto bytes = encode_request(RequestFrame{});
    bytes[5] = 0x7F;
    FrameDecoder dec;
    try {
      dec.feed(bytes.data(), bytes.size());
      (void)dec.next();
      FAIL() << "bad type accepted";
    } catch (const ProtocolError& e) {
      EXPECT_EQ(e.code(), ErrorCode::kBadType);
    }
  }
}

// ------------------------------------------------ protocol: activation frame

/// A small but fully populated offload frame: 2 blocks, split at 1.
ActivationFrame tiny_activation() {
  ActivationFrame f;
  f.request_id = 0x0102030405060708ull;
  f.deadline_ms = 1.5;
  f.label = 7;
  f.start_block = 1;
  f.state.plan_bits = {1, 0};
  f.state.session_conf = {0.5f};
  f.state.sim_t_ms = 2.5;
  f.state.last_conf = 1.0f;
  f.state.has_result = true;
  f.state.exit_index = 0;
  f.state.correct = true;
  f.state.result_time_ms = 1.5;
  f.state.branches_executed = 1;
  f.state.searches_run = 2;
  f.state.planner_ms = 0.25;
  f.activation = nn::Tensor{{1, 2}, {1.0f, -2.0f}};
  return f;
}

TEST(Protocol, ActivationGoldenBytes) {
  const ActivationFrame f = tiny_activation();
  const std::vector<std::uint8_t> expected = {
      // header: magic "EINT", version 1, type kActivation, reserved,
      // body len 114
      0x45, 0x49, 0x4E, 0x54, 0x01, 0x04, 0x00, 0x00, 0x72, 0x00, 0x00, 0x00,
      // request_id (u64 LE)
      0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01,
      // deadline 1.5 (f64 LE)
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xF8, 0x3F,
      // label (u64 LE)
      0x07, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      // codec version 2, payload dtype f32
      0x02, 0x00,
      // start_block (u32 LE), num_exits (u32 LE)
      0x01, 0x00, 0x00, 0x00, 0x02, 0x00, 0x00, 0x00,
      // plan bits
      0x01, 0x00,
      // session_conf 0.5f
      0x00, 0x00, 0x00, 0x3F,
      // sim_t_ms 2.5 (f64 LE)
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x04, 0x40,
      // last_conf 1.0f
      0x00, 0x00, 0x80, 0x3F,
      // has_result, exit_index 0 (u64), correct
      0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x01,
      // result_time_ms 1.5 (f64 LE)
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xF8, 0x3F,
      // branches_executed 1, searches_run 2 (u64 LE)
      0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      // planner_ms 0.25 (f64 LE)
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xD0, 0x3F,
      // tensor codec: rank 2, dims (1, 2), data 1.0f, -2.0f
      0x02, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x02, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x80, 0x3F, 0x00, 0x00, 0x00, 0xC0};
  const auto bytes = encode_activation(f);
  EXPECT_EQ(bytes, expected);
  EXPECT_EQ(bytes.size(), activation_wire_bytes(f));
  EXPECT_EQ(encode_activation(f), encode_activation(f));
}

// The v1 body layout (no dtype byte) must keep encoding and decoding
// byte-identically: deployed devices that predate the q8 codec still ship
// v1 frames.
TEST(Protocol, ActivationV1GoldenBytes) {
  ActivationFrame f = tiny_activation();
  f.codec_version = 1;
  const std::vector<std::uint8_t> expected = {
      // header: magic "EINT", version 1, type kActivation, reserved,
      // body len 113
      0x45, 0x49, 0x4E, 0x54, 0x01, 0x04, 0x00, 0x00, 0x71, 0x00, 0x00, 0x00,
      // request_id (u64 LE)
      0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01,
      // deadline 1.5 (f64 LE)
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xF8, 0x3F,
      // label (u64 LE)
      0x07, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      // codec version 1 (no dtype byte)
      0x01,
      // start_block (u32 LE), num_exits (u32 LE)
      0x01, 0x00, 0x00, 0x00, 0x02, 0x00, 0x00, 0x00,
      // plan bits
      0x01, 0x00,
      // session_conf 0.5f
      0x00, 0x00, 0x00, 0x3F,
      // sim_t_ms 2.5 (f64 LE)
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x04, 0x40,
      // last_conf 1.0f
      0x00, 0x00, 0x80, 0x3F,
      // has_result, exit_index 0 (u64), correct
      0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x01,
      // result_time_ms 1.5 (f64 LE)
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xF8, 0x3F,
      // branches_executed 1, searches_run 2 (u64 LE)
      0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      // planner_ms 0.25 (f64 LE)
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xD0, 0x3F,
      // tensor codec: rank 2, dims (1, 2), data 1.0f, -2.0f
      0x02, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x02, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x80, 0x3F, 0x00, 0x00, 0x00, 0xC0};
  const auto bytes = encode_activation(f);
  EXPECT_EQ(bytes, expected);
  EXPECT_EQ(bytes.size(), activation_wire_bytes(f));
  // v1 bodies decode as implicit f32 payloads.
  const std::vector<std::uint8_t> body{bytes.begin() + 12, bytes.end()};
  const ActivationFrame back = decode_activation(body);
  EXPECT_EQ(back.codec_version, 1);
  EXPECT_EQ(back.dtype, ActDtype::kF32);
  ASSERT_EQ(back.activation.data().size(), f.activation.data().size());
  for (std::size_t i = 0; i < f.activation.data().size(); ++i)
    EXPECT_EQ(back.activation.data()[i], f.activation.data()[i]) << i;
}

// A q8 frame round-trips to exactly deq(q(activation)) — the device can
// predict the edge's view of the payload bit-for-bit — and is smaller on
// the wire than its f32 twin.
TEST(Protocol, ActivationQ8RoundTrip) {
  ActivationFrame f = tiny_activation();
  util::Rng rng{13};
  std::vector<float> data(1 * 3 * 4 * 4);
  for (auto& v : data) v = rng.uniform_f(-2.0f, 2.0f);
  f.activation = nn::Tensor{{1, 3, 4, 4}, data};
  f.dtype = ActDtype::kQ8;

  const auto bytes = encode_activation(f);
  EXPECT_EQ(bytes.size(), activation_wire_bytes(f));
  ActivationFrame f32_twin = tiny_activation();
  f32_twin.activation = f.activation;
  EXPECT_LT(bytes.size(), activation_wire_bytes(f32_twin));

  const std::vector<std::uint8_t> body{bytes.begin() + 12, bytes.end()};
  const ActivationFrame back = decode_activation(body);
  EXPECT_EQ(back.dtype, ActDtype::kQ8);
  ASSERT_EQ(back.activation.shape(), f.activation.shape());
  std::vector<std::uint8_t> blob;
  nn::encode_tensor_q8(f.activation, blob);
  const nn::Tensor deq = nn::decode_tensor_q8(blob);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(back.activation.data()[i], deq.data()[i]) << i;
    EXPECT_NEAR(back.activation.data()[i], data[i], 2.0f / 127.0f) << i;
  }
}

TEST(Protocol, ActivationRoundTripByteAtATime) {
  ActivationFrame f = tiny_activation();
  // A bigger, NCHW-shaped payload than the golden frame.
  util::Rng rng{11};
  std::vector<float> data(1 * 3 * 4 * 4);
  for (auto& v : data) v = rng.uniform_f(-2.0f, 2.0f);
  f.activation = nn::Tensor{{1, 3, 4, 4}, data};

  const auto bytes = encode_activation(f);
  FrameDecoder dec;
  std::optional<Frame> frame;
  for (const std::uint8_t byte : bytes) {  // worst case: 1 byte per feed
    dec.feed(&byte, 1);
    if (auto got = dec.next()) frame = std::move(got);
  }
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, FrameType::kActivation);
  const auto back = decode_activation(frame->body);
  EXPECT_EQ(back.request_id, f.request_id);
  EXPECT_EQ(back.deadline_ms, f.deadline_ms);
  EXPECT_EQ(back.label, f.label);
  EXPECT_EQ(back.codec_version, kActivationCodecVersion);
  EXPECT_EQ(back.start_block, f.start_block);
  EXPECT_EQ(back.state.plan_bits, f.state.plan_bits);
  EXPECT_EQ(back.state.session_conf, f.state.session_conf);
  EXPECT_EQ(back.state.sim_t_ms, f.state.sim_t_ms);
  EXPECT_EQ(back.state.last_conf, f.state.last_conf);
  EXPECT_EQ(back.state.has_result, f.state.has_result);
  EXPECT_EQ(back.state.exit_index, f.state.exit_index);
  EXPECT_EQ(back.state.correct, f.state.correct);
  EXPECT_EQ(back.state.result_time_ms, f.state.result_time_ms);
  EXPECT_EQ(back.state.branches_executed, f.state.branches_executed);
  EXPECT_EQ(back.state.searches_run, f.state.searches_run);
  EXPECT_EQ(back.state.planner_ms, f.state.planner_ms);
  EXPECT_EQ(back.activation.shape(), f.activation.shape());
  ASSERT_EQ(back.activation.data().size(), data.size());
  for (std::size_t i = 0; i < data.size(); ++i)
    EXPECT_EQ(back.activation.data()[i], data[i]) << i;
  EXPECT_EQ(dec.buffered_bytes(), 0u);
}

TEST(Protocol, ActivationTruncatedEveryPrefixThrows) {
  const auto bytes = encode_activation(tiny_activation());
  const std::vector<std::uint8_t> body{
      bytes.begin() + static_cast<std::ptrdiff_t>(kHeaderBytes), bytes.end()};
  for (std::size_t n = 0; n < body.size(); ++n) {
    const std::vector<std::uint8_t> prefix{
        body.begin(), body.begin() + static_cast<std::ptrdiff_t>(n)};
    EXPECT_THROW((void)decode_activation(prefix), ProtocolError) << n;
  }
  // Trailing garbage breaks the tensor codec's exact-length check.
  auto bloated = body;
  bloated.push_back(0x00);
  EXPECT_THROW((void)decode_activation(bloated), ProtocolError);
}

TEST(Protocol, ActivationCodecVersionMismatchRejected) {
  auto bytes = encode_activation(tiny_activation());
  // codec_version sits after request_id + deadline + label.
  bytes[kHeaderBytes + 24] = kActivationCodecVersion + 1;
  const std::vector<std::uint8_t> body{
      bytes.begin() + static_cast<std::ptrdiff_t>(kHeaderBytes), bytes.end()};
  try {
    (void)decode_activation(body);
    FAIL() << "future codec version accepted";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kBadVersion);
  }
}

TEST(Protocol, ActivationCorruptBodyRejected) {
  const auto bytes = encode_activation(tiny_activation());
  const std::vector<std::uint8_t> body{
      bytes.begin() + static_cast<std::ptrdiff_t>(kHeaderBytes), bytes.end()};
  {
    auto bad = body;
    bad[33] = 2;  // first plan bit: not 0/1
    try {
      (void)decode_activation(bad);
      FAIL() << "non-binary plan bit accepted";
    } catch (const ProtocolError& e) {
      EXPECT_EQ(e.code(), ErrorCode::kMalformedBody);
    }
  }
  {
    auto bad = body;
    bad[25] = 5;  // start_block past num_exits
    try {
      (void)decode_activation(bad);
      FAIL() << "out-of-range start_block accepted";
    } catch (const ProtocolError& e) {
      EXPECT_EQ(e.code(), ErrorCode::kMalformedBody);
    }
  }
  {
    auto bad = body;
    // Last tensor dim 2 -> 3: dims no longer match the payload length.
    bad[bad.size() - 12] = 3;
    try {
      (void)decode_activation(bad);
      FAIL() << "tensor dim/payload mismatch accepted";
    } catch (const ProtocolError& e) {
      EXPECT_EQ(e.code(), ErrorCode::kMalformedBody);
    }
  }
}

TEST(Protocol, ActivationOversizedFrameRejected) {
  ActivationFrame f = tiny_activation();
  f.activation = nn::Tensor{{1, 8, 8, 8}, 0.5f};
  const auto bytes = encode_activation(f);
  FrameDecoder dec{128};  // cap far below the encoded body size
  try {
    dec.feed(bytes.data(), bytes.size());
    (void)dec.next();
    FAIL() << "oversized activation accepted";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kFrameTooLarge);
  }
  EXPECT_TRUE(dec.poisoned());
}

TEST(Protocol, OversizedFrameRejectedBeforeBuffering) {
  RequestFrame req;
  req.record.confidence.assign(64, 0.5f);
  req.record.correct.assign(64, 1);
  const auto bytes = encode_request(req);
  FrameDecoder dec{64};  // cap far below the encoded body size
  try {
    dec.feed(bytes.data(), bytes.size());
    (void)dec.next();
    FAIL() << "oversized frame accepted";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kFrameTooLarge);
  }
  EXPECT_TRUE(dec.poisoned());
}

TEST(Loopback, ActivationRefusedWhenServerNotResumeCapable) {
  // Default TcpServerConfig: accept_activation = false — the generic runner
  // cannot execute resume payloads, so the frame is refused with a typed
  // error instead of being handed to the pool.
  Stack stack{1};
  EdgeClient client{stack.client_config()};
  const std::uint64_t id = client.send_activation(tiny_activation());
  try {
    (void)client.wait(id);
    FAIL() << "activation accepted by a non-resume server";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kBadType);
  }
  const auto metrics = stack.tcp->net_metrics();
  EXPECT_EQ(metrics.activations, 0u);
  EXPECT_EQ(metrics.protocol_errors, 1u);
}

TEST(Backoff, JitteredSleepStaysInsideConfiguredBand) {
  util::Rng rng{123};
  for (int i = 0; i < 200; ++i) {
    const double s = jittered_backoff_ms(100.0, 0.5, rng);
    EXPECT_GE(s, 50.0);
    EXPECT_LE(s, 100.0);
  }
  // frac 0 disables jitter entirely.
  for (int i = 0; i < 8; ++i)
    EXPECT_EQ(jittered_backoff_ms(40.0, 0.0, rng), 40.0);
  // Same seed, same draws: the jitter stream is deterministic.
  util::Rng a{9}, b{9};
  for (int i = 0; i < 32; ++i)
    EXPECT_EQ(jittered_backoff_ms(250.0, 0.5, a),
              jittered_backoff_ms(250.0, 0.5, b));
}

// ------------------------------------------------------- serving satellite

TEST(OwnedSubmit, RecordOutlivesCallerScope) {
  const auto et = tiny_et();
  const auto cs = tiny_cs(2);
  const core::UniformExitDistribution dist{et.total_ms()};
  serving::ServerConfig config;
  config.pool.num_workers = 1;
  serving::EdgeServer server{
      et,
      serving::make_replicated_engine_factory(
          et, nullptr, {}, std::vector<float>(cs.num_exits, 0.5f)),
      [&dist](runtime::ElasticEngine& engine, const serving::Task& task,
              util::Rng&) {
        return engine.run(*task.record, task.deadline_ms, dist);
      },
      config};

  std::atomic<bool> called{false};
  runtime::InferenceOutcome seen;
  {
    // The only owner of the record handle dies right after submit; the task
    // must keep the payload alive through execution.
    auto rec = std::make_shared<const profiling::CSRecord>(cs.records[0]);
    const auto status = server.submit(
        std::move(rec), et.total_ms(),
        [&called, &seen](const serving::TaskResult& result) {
          seen = result.outcome;
          called.store(true, std::memory_order_release);
        });
    ASSERT_EQ(status, serving::SubmitStatus::kQueued);
  }
  server.shutdown();
  ASSERT_TRUE(called.load(std::memory_order_acquire));
  EXPECT_TRUE(seen.has_result);

  EXPECT_THROW(
      (void)server.submit(std::shared_ptr<const profiling::CSRecord>{}, 1.0),
      std::invalid_argument);
}

TEST(OwnedSubmit, MatchesReplayPointerPath) {
  const auto et = tiny_et();
  const auto cs = tiny_cs(8);
  const core::UniformExitDistribution dist{et.total_ms()};
  const auto factory = serving::make_replicated_engine_factory(
      et, nullptr, {}, std::vector<float>(cs.num_exits, 0.5f));
  const serving::TaskRunner runner =
      [&dist](runtime::ElasticEngine& engine, const serving::Task& task,
              util::Rng&) {
        return engine.run(*task.record, task.deadline_ms, dist);
      };
  serving::ServerConfig config;
  config.pool.num_workers = 1;

  serving::EdgeServer by_ref{et, factory, runner, config};
  for (const auto& rec : cs.records) by_ref.submit(rec, 4.0);
  by_ref.shutdown();

  serving::EdgeServer owned{et, factory, runner, config};
  std::vector<runtime::InferenceOutcome> outcomes(cs.size());
  for (std::size_t i = 0; i < cs.size(); ++i)
    owned.submit(std::make_shared<const profiling::CSRecord>(cs.records[i]),
                 4.0, [&outcomes, i](const serving::TaskResult& r) {
                   outcomes[i] = r.outcome;
                 });
  owned.shutdown();

  const auto a = by_ref.metrics();
  const auto b = owned.metrics();
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.correct, b.correct);
  EXPECT_EQ(a.valid, b.valid);
  for (const auto& out : outcomes) EXPECT_TRUE(out.has_result);
}

// ------------------------------------------------------- loopback serving

TEST(Loopback, RoundTripMatchesInProcess) {
  Stack stack{2};
  util::Rng rng{11};
  std::vector<std::pair<std::size_t, double>> stream;
  for (std::size_t i = 0; i < 24; ++i)
    stream.emplace_back(rng.uniform_int(stack.cs.size()),
                        rng.uniform(2.0, 1.4 * stack.et.total_ms()));

  // In-process reference on an identical second stack.
  serving::ServerConfig config;
  config.queue_capacity = 1024;
  config.pool.num_workers = 2;
  serving::EdgeServer reference{
      stack.et, serving::make_replicated_engine_factory(
                            stack.et, nullptr, {},
                            std::vector<float>(stack.cs.num_exits, 0.5f)),
      [&stack](runtime::ElasticEngine& engine, const serving::Task& task,
               util::Rng&) {
        return engine.run(*task.record, task.deadline_ms, stack.dist);
      },
      config};
  std::vector<runtime::InferenceOutcome> expected(stream.size());
  for (std::size_t i = 0; i < stream.size(); ++i)
    reference.submit(
        std::make_shared<const profiling::CSRecord>(
            stack.cs.records[stream[i].first]),
        stream[i].second,
        [&expected, i](const serving::TaskResult& r) {
          expected[i] = r.outcome;
        });
  reference.shutdown();

  EdgeClient client{stack.client_config()};
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const auto resp = client.request(stack.cs.records[stream[i].first],
                                     stream[i].second);
    EXPECT_EQ(resp.status, serving::SubmitStatus::kQueued) << i;
    EXPECT_TRUE(same_outcome(resp.outcome, expected[i])) << i;
  }
  EXPECT_EQ(stack.tcp->net_metrics().protocol_errors, 0u);
  EXPECT_EQ(stack.tcp->net_metrics().responses, stream.size());
}

TEST(Loopback, PipelinedResponsesClaimableOutOfOrder) {
  Stack stack{2};
  EdgeClient client{stack.client_config()};
  std::vector<std::uint64_t> ids;
  for (std::size_t i = 0; i < 8; ++i)
    ids.push_back(
        client.send(stack.cs.records[i % stack.cs.size()], 4.0 + i * 0.5));
  EXPECT_EQ(client.in_flight(), 8u);
  // Claim in reverse send order: wait() must buffer other ids.
  for (auto it = ids.rbegin(); it != ids.rend(); ++it) {
    const auto resp = client.wait(*it);
    EXPECT_EQ(resp.request_id, *it);
    EXPECT_EQ(resp.status, serving::SubmitStatus::kQueued);
    EXPECT_TRUE(resp.outcome.has_result);
  }
  EXPECT_EQ(client.in_flight(), 0u);
}

TEST(Loopback, ShedStatusCrossesWire) {
  Stack stack{1};
  EdgeClient client{stack.client_config()};
  // Below the first-exit admission floor (1.5 ms for the tiny profile).
  const auto resp = client.request(stack.cs.records[0], 0.5);
  EXPECT_EQ(resp.status, serving::SubmitStatus::kShed);
  EXPECT_FALSE(resp.outcome.has_result);
}

TEST(Loopback, ConnectionLimitRejectsExtraClients) {
  TcpServerConfig net_config;
  net_config.max_connections = 1;
  Stack stack{1, nullptr, net_config};

  EdgeClient first{stack.client_config()};
  first.connect();
  ASSERT_EQ(first.request(stack.cs.records[0], 4.0).status,
            serving::SubmitStatus::kQueued);

  auto cc = stack.client_config();
  cc.max_request_retries = 1;
  EdgeClient second{cc};
  // Depending on timing the client sees the typed kServerOverloaded error
  // frame (ProtocolError) or the ensuing close (NetError); both are
  // runtime_errors and both mean the limit held.
  EXPECT_THROW((void)second.request(stack.cs.records[0], 4.0),
               std::runtime_error);
  EXPECT_GE(stack.tcp->net_metrics().connections_rejected, 1u);

  // The admitted connection keeps working.
  EXPECT_EQ(first.request(stack.cs.records[1], 4.0).status,
            serving::SubmitStatus::kQueued);
}

TEST(Loopback, GracefulStopDrainsInFlight) {
  // Gate the workers so requests pile up queued/executing, then stop() while
  // they are in flight: every accepted request must still get its response.
  struct Gate {
    std::mutex mu;
    std::condition_variable cv;
    bool open = false;
  };
  auto gate = std::make_shared<Gate>();
  const auto et = tiny_et();
  const core::UniformExitDistribution dist{et.total_ms()};
  const serving::TaskRunner gated =
      [gate, &dist](runtime::ElasticEngine& engine, const serving::Task& task,
                    util::Rng&) {
        {
          std::unique_lock lock{gate->mu};
          gate->cv.wait(lock, [&] { return gate->open; });
        }
        return engine.run(*task.record, task.deadline_ms, dist);
      };
  Stack stack{2, gated};

  EdgeClient client{stack.client_config()};
  std::vector<std::uint64_t> ids;
  for (std::size_t i = 0; i < 4; ++i)
    ids.push_back(client.send(stack.cs.records[i], 4.0));

  // Wait until the server has actually accepted all four requests.
  while (stack.tcp->net_metrics().requests < 4)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));

  std::thread stopper{[&] { stack.tcp->stop(); }};
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  {
    std::lock_guard lock{gate->mu};
    gate->open = true;
  }
  gate->cv.notify_all();
  stopper.join();

  for (const auto id : ids) {
    const auto resp = client.wait(id);
    EXPECT_EQ(resp.status, serving::SubmitStatus::kQueued);
    EXPECT_TRUE(resp.outcome.has_result);
  }
  EXPECT_EQ(stack.tcp->net_metrics().dropped_responses, 0u);
}

TEST(Loopback, ClientReconnectsThroughFlappingServer) {
  const auto et = tiny_et();
  const auto cs = tiny_cs(4);
  const core::UniformExitDistribution dist{et.total_ms()};
  const auto factory = serving::make_replicated_engine_factory(
      et, nullptr, {}, std::vector<float>(cs.num_exits, 0.5f));
  const auto make_runner = [&dist](const profiling::CSProfile&) {
    return serving::TaskRunner{
        [&dist](runtime::ElasticEngine& engine, const serving::Task& task,
                util::Rng&) {
          return engine.run(*task.record, task.deadline_ms, dist);
        }};
  };

  serving::ServerConfig config;
  config.pool.num_workers = 1;
  auto edge_a = std::make_unique<serving::EdgeServer>(et, factory,
                                                      make_runner(cs), config);
  auto tcp_a = std::make_unique<EdgeTcpServer>(*edge_a);
  tcp_a->start();
  const std::uint16_t port = tcp_a->port();

  TcpClientConfig cc;
  cc.port = port;
  cc.max_connect_attempts = 12;  // capped backoff sums to well over 1 s
  cc.max_request_retries = 6;
  EdgeClient client{cc};
  ASSERT_EQ(client.request(cs.records[0], 4.0).status,
            serving::SubmitStatus::kQueued);

  // Kill the server, then bring a new one up on the SAME port after a delay
  // the client's dial backoff must ride through.
  tcp_a->stop();
  edge_a->shutdown();
  tcp_a.reset();
  edge_a.reset();

  serving::EdgeServer edge_b{et, factory, make_runner(cs), config};
  TcpServerConfig reuse;
  reuse.port = port;
  std::thread restarter;
  EdgeTcpServer tcp_b{edge_b, reuse};
  restarter = std::thread{[&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    tcp_b.start();
  }};

  // The first attempt may race the restart; request() reconnects with
  // backoff until the new server answers.
  const auto resp = client.request(cs.records[1], 4.0);
  EXPECT_EQ(resp.status, serving::SubmitStatus::kQueued);
  EXPECT_TRUE(resp.outcome.has_result);
  EXPECT_GE(client.reconnects(), 1u);
  restarter.join();
  tcp_b.stop();
  edge_b.shutdown();
}

}  // namespace
}  // namespace einet::net
