#include <gtest/gtest.h>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace einet::util {
namespace {

TEST(Stats, MeanBasic) {
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Stats, StddevBasic) {
  EXPECT_NEAR(stddev({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(stddev({5.0}), 0.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 25.0);
}

TEST(Stats, PercentileRejectsBadInput) {
  EXPECT_THROW(percentile({}, 50), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, -1), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, 101), std::invalid_argument);
}

TEST(RunningStats, MatchesBatchStats) {
  Rng rng{1};
  std::vector<double> xs;
  RunningStats rs;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-5, 5);
    xs.push_back(x);
    rs.add(x);
  }
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-9);
  EXPECT_NEAR(rs.stddev(), stddev(xs), 1e-9);
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_DOUBLE_EQ(rs.min(), *std::min_element(xs.begin(), xs.end()));
  EXPECT_DOUBLE_EQ(rs.max(), *std::max_element(xs.begin(), xs.end()));
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

TEST(Stats, PercentileSingleSample) {
  // Any p collapses to the only sample.
  EXPECT_DOUBLE_EQ(percentile({42.0}, 0), 42.0);
  EXPECT_DOUBLE_EQ(percentile({42.0}, 50), 42.0);
  EXPECT_DOUBLE_EQ(percentile({42.0}, 100), 42.0);
}

TEST(Stats, PercentileExtremesAreMinAndMax) {
  Rng rng{5};
  std::vector<double> xs;
  for (int i = 0; i < 257; ++i) xs.push_back(rng.uniform(-100, 100));
  EXPECT_DOUBLE_EQ(percentile(xs, 0), *std::min_element(xs.begin(), xs.end()));
  EXPECT_DOUBLE_EQ(percentile(xs, 100),
                   *std::max_element(xs.begin(), xs.end()));
}

TEST(RunningStats, SingleSample) {
  RunningStats rs;
  rs.add(3.5);
  EXPECT_EQ(rs.count(), 1u);
  EXPECT_DOUBLE_EQ(rs.mean(), 3.5);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.min(), 3.5);
  EXPECT_DOUBLE_EQ(rs.max(), 3.5);
}

TEST(RunningStats, MergeEmptyIsIdentityBothWays) {
  RunningStats filled;
  for (double x : {1.0, 2.0, 4.0}) filled.add(x);

  RunningStats lhs = filled;
  lhs.merge(RunningStats{});  // empty rhs: no-op
  EXPECT_EQ(lhs.count(), 3u);
  EXPECT_DOUBLE_EQ(lhs.mean(), filled.mean());
  EXPECT_DOUBLE_EQ(lhs.variance(), filled.variance());

  RunningStats empty;
  empty.merge(filled);  // empty lhs: adopt rhs wholesale
  EXPECT_EQ(empty.count(), 3u);
  EXPECT_DOUBLE_EQ(empty.mean(), filled.mean());
  EXPECT_DOUBLE_EQ(empty.variance(), filled.variance());
  EXPECT_DOUBLE_EQ(empty.min(), 1.0);
  EXPECT_DOUBLE_EQ(empty.max(), 4.0);
}

TEST(RunningStats, MergeMatchesSingleAccumulator) {
  Rng rng{9};
  RunningStats whole, left, right;
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.gaussian(2.0, 3.0);
    whole.add(x);
    (i % 3 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(Histogram, CountsFallInBins) {
  Histogram h{0.0, 10.0, 10};
  for (int i = 0; i < 10; ++i) h.add(i + 0.5);
  for (std::size_t b = 0; b < 10; ++b) EXPECT_EQ(h.count(b), 1u);
  EXPECT_EQ(h.total(), 10u);
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h{0.0, 1.0, 4};
  h.add(-5.0);
  h.add(99.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(3), 1u);
}

TEST(Histogram, CentralSpreadTightCluster) {
  Histogram h{0.0, 1.0, 10};
  // 95 samples at ~0.5, 5 outliers.
  for (int i = 0; i < 95; ++i) h.add(0.5 + 0.001 * (i % 3));
  for (int i = 0; i < 5; ++i) h.add(0.9);
  EXPECT_LT(h.central_spread(0.9), 0.01);
  EXPECT_NEAR(h.central_spread(1.0), 0.4, 0.01);
}

TEST(Histogram, RejectsDegenerateConstruction) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
}

TEST(Histogram, AsciiRendersOneRowPerBin) {
  Histogram h{0.0, 1.0, 3};
  h.add(0.1);
  h.add(0.5);
  const std::string art = h.ascii();
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 3);
}


TEST(Reservoir, EmptyPercentileThrows) {
  Reservoir r{8};
  EXPECT_TRUE(r.exact());
  EXPECT_EQ(r.seen(), 0u);
  EXPECT_THROW(r.percentile(50.0), std::invalid_argument);
}

TEST(Reservoir, SingleSampleIsEveryPercentile) {
  Reservoir r{8};
  r.add(3.5);
  EXPECT_TRUE(r.exact());
  EXPECT_DOUBLE_EQ(r.percentile(0.0), 3.5);
  EXPECT_DOUBLE_EQ(r.percentile(50.0), 3.5);
  EXPECT_DOUBLE_EQ(r.percentile(100.0), 3.5);
}

TEST(Reservoir, ZeroCapacityClampsToOne) {
  Reservoir r{0};
  EXPECT_EQ(r.capacity(), 1u);
  r.add(1.0);
  EXPECT_DOUBLE_EQ(r.percentile(50.0), 1.0);
}

TEST(Reservoir, ExactWhileUnderCapacityThenEstimates) {
  Reservoir r{16, /*seed=*/99};
  for (int i = 0; i < 16; ++i) r.add(static_cast<double>(i));
  EXPECT_TRUE(r.exact());
  EXPECT_EQ(r.samples().size(), 16u);
  r.add(16.0);  // 17th sample: overflow, reservoir switches to estimates
  EXPECT_FALSE(r.exact());
  EXPECT_EQ(r.seen(), 17u);
  EXPECT_EQ(r.samples().size(), 16u);  // size stays bounded at the cap
}

TEST(Reservoir, OverflowEstimatesStayInSampleRange) {
  Reservoir r{32, /*seed=*/7};
  for (int i = 0; i < 1000; ++i) r.add(static_cast<double>(i));
  EXPECT_FALSE(r.exact());
  const double p50 = r.percentile(50.0);
  EXPECT_GE(p50, 0.0);
  EXPECT_LE(p50, 999.0);
  // A uniform stream's retained median should land near the true median.
  EXPECT_NEAR(p50, 500.0, 350.0);
  EXPECT_LE(r.percentile(5.0), r.percentile(95.0));
}

}  // namespace
}  // namespace einet::util
