#include <gtest/gtest.h>

#include "predictor/activation_cache.hpp"
#include "predictor/cs_predictor.hpp"

namespace einet::predictor {
namespace {

/// A CS-profile with learnable structure: confidences rise with depth, and
/// a sample's level is visible from its first-exit confidence.
profiling::CSProfile structured_profile(std::size_t exits,
                                        std::size_t samples,
                                        std::uint64_t seed = 7) {
  profiling::CSProfile p;
  p.model_name = "toy";
  p.dataset_name = "synth";
  p.num_exits = exits;
  util::Rng rng{seed};
  for (std::size_t s = 0; s < samples; ++s) {
    const float base = rng.uniform_f(0.2f, 0.6f);
    profiling::CSRecord r;
    r.label = 0;
    for (std::size_t e = 0; e < exits; ++e) {
      const float c = std::clamp(
          base + 0.4f * static_cast<float>(e) / static_cast<float>(exits) +
              rng.uniform_f(-0.03f, 0.03f),
          0.0f, 1.0f);
      r.confidence.push_back(c);
      r.correct.push_back(static_cast<std::uint8_t>(rng.bernoulli(c)));
    }
    p.records.push_back(std::move(r));
  }
  return p;
}

TEST(PredictorDataset, Figure5Construction) {
  // Reproduce the paper's Figure-5 example: a three-exit model gives each
  // sample two prefix rows (plus our empty-prefix extension).
  profiling::CSProfile p;
  p.model_name = "fig5";
  p.dataset_name = "d";
  p.num_exits = 3;
  p.records.push_back({{0.5126f, 0.8602f, 0.9999f}, {1, 1, 1}, 0});
  const auto ds = build_predictor_dataset(p);
  ASSERT_EQ(ds.size(), 3u);  // empty prefix + k=0 + k=1

  // Row 0: the empty-prefix prior.
  EXPECT_EQ(ds.inputs[0], (std::vector<float>{0, 0, 0}));
  EXPECT_EQ(ds.masks[0], (std::vector<float>{1, 1, 1}));

  // Row 1: input [c0, 0, 0], mask selects the two future exits.
  EXPECT_FLOAT_EQ(ds.inputs[1][0], 0.5126f);
  EXPECT_EQ(ds.inputs[1][1], 0.0f);
  EXPECT_EQ(ds.masks[1], (std::vector<float>{0, 1, 1}));

  // Row 2: input [c0, c1, 0].
  EXPECT_FLOAT_EQ(ds.inputs[2][1], 0.8602f);
  EXPECT_EQ(ds.masks[2], (std::vector<float>{0, 0, 1}));

  // All rows share the full label list.
  for (const auto& label : ds.labels)
    EXPECT_FLOAT_EQ(label[2], 0.9999f);
}

TEST(PredictorDataset, RejectsDegenerateProfiles) {
  profiling::CSProfile p;
  p.model_name = "x";
  p.dataset_name = "d";
  p.num_exits = 1;
  p.records.push_back({{0.5f}, {1}, 0});
  EXPECT_THROW(build_predictor_dataset(p), std::invalid_argument);
}

TEST(CSPredictor, ConstructionValidates) {
  EXPECT_THROW((CSPredictor{1, CSPredictorConfig{}}), std::invalid_argument);
  EXPECT_THROW((CSPredictor{4, CSPredictorConfig{.hidden = 0}}),
               std::invalid_argument);
}

TEST(CSPredictor, TrainingReducesMaskedLoss) {
  const auto profile = structured_profile(5, 200);
  CSPredictorConfig cfg;
  cfg.hidden = 32;
  cfg.epochs = 1;
  CSPredictor one_epoch{5, cfg};
  const float early = one_epoch.train(profile);
  cfg.epochs = 40;
  CSPredictor many_epochs{5, cfg};
  const float late = many_epochs.train(profile);
  EXPECT_LT(late, early);
  EXPECT_LT(late, 0.01f);
}

TEST(CSPredictor, LearnsDepthTrend) {
  const auto profile = structured_profile(5, 300);
  CSPredictorConfig cfg;
  cfg.hidden = 32;
  cfg.epochs = 60;
  CSPredictor pred{5, cfg};
  pred.train(profile);
  // Given a low first-exit confidence, later exits should be predicted to
  // improve (the structural property the planner relies on).
  std::vector<float> observed{0.3f, 0, 0, 0, 0};
  const auto out = pred.predict(observed, 1);
  EXPECT_FLOAT_EQ(out[0], 0.3f);  // observed passes through (Eq. 1)
  EXPECT_GT(out[4], out[0]);
  for (float v : out) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST(CSPredictor, PredictValidatesArguments) {
  CSPredictor pred{4, CSPredictorConfig{.hidden = 8}};
  std::vector<float> bad(3, 0.0f);
  EXPECT_THROW(pred.predict(bad, 0), std::invalid_argument);
  std::vector<float> ok(4, 0.0f);
  EXPECT_THROW(pred.predict(ok, 5), std::invalid_argument);
}

TEST(CSPredictor, TrainRejectsMismatchedDataset) {
  CSPredictor pred{4, CSPredictorConfig{.hidden = 8}};
  const auto profile = structured_profile(5, 50);
  EXPECT_THROW(pred.train(profile), std::invalid_argument);
}

// ---- Activation Cache (paper Section IV-C4 / Table III) -------------------

TEST(ActivationCache, MatchesFullForwardAfterEachPush) {
  const auto profile = structured_profile(6, 150);
  CSPredictorConfig cfg;
  cfg.hidden = 48;
  cfg.epochs = 10;
  CSPredictor pred{6, cfg};
  pred.train(profile);

  ActivationCacheSession session{pred};
  std::vector<float> observed(6, 0.0f);

  // Empty-input equivalence.
  {
    const auto cached = session.forward_raw();
    const auto full = pred.forward_raw(observed);
    for (std::size_t i = 0; i < 6; ++i)
      EXPECT_NEAR(cached[i], full[i], 1e-4f) << "empty input, out " << i;
  }
  // Incremental equivalence after every push.
  util::Rng rng{5};
  for (std::size_t k = 0; k < 6; ++k) {
    const float conf = rng.uniform_f(0.1f, 0.9f);
    observed[k] = conf;
    session.push(k, conf);
    const auto cached = session.forward_raw();
    const auto full = pred.forward_raw(observed);
    for (std::size_t i = 0; i < 6; ++i)
      EXPECT_NEAR(cached[i], full[i], 1e-3f) << "push " << k << ", out " << i;
  }
}

TEST(ActivationCache, PredictAppliesEquationOne) {
  CSPredictor pred{4, CSPredictorConfig{.hidden = 16}};
  ActivationCacheSession session{pred};
  session.push(0, 0.42f);
  const auto out = session.predict(1);
  EXPECT_FLOAT_EQ(out[0], 0.42f);
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_GE(out[i], 0.0f);
    EXPECT_LE(out[i], 1.0f);
  }
}

TEST(ActivationCache, PushReplacesPreviousValue) {
  CSPredictor pred{4, CSPredictorConfig{.hidden = 16}};
  ActivationCacheSession session{pred};
  session.push(1, 0.3f);
  session.push(1, 0.8f);  // replace
  std::vector<float> observed{0.0f, 0.8f, 0.0f, 0.0f};
  const auto cached = session.forward_raw();
  const auto full = pred.forward_raw(observed);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(cached[i], full[i], 1e-4f);
}

TEST(ActivationCache, ResetClearsState) {
  CSPredictor pred{4, CSPredictorConfig{.hidden = 16}};
  ActivationCacheSession session{pred};
  session.push(0, 0.9f);
  session.reset();
  const auto cached = session.forward_raw();
  const auto full = pred.forward_raw(std::vector<float>(4, 0.0f));
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(cached[i], full[i], 1e-5f);
  EXPECT_EQ(session.logical_input(), std::vector<float>(4, 0.0f));
}

TEST(ActivationCache, CacheBytesScaleWithHidden) {
  CSPredictor small{4, CSPredictorConfig{.hidden = 128}};
  CSPredictor large{4, CSPredictorConfig{.hidden = 2048}};
  ActivationCacheSession s1{small}, s2{large};
  EXPECT_LT(s1.cache_bytes(), s2.cache_bytes());
  // Table III reports "a few dozen KB at most": 2048 floats ~ 8 KB.
  EXPECT_LE(s2.cache_bytes(), 64u * 1024u);
}

TEST(ActivationCache, PushRejectsBadIndex) {
  CSPredictor pred{4, CSPredictorConfig{.hidden = 16}};
  ActivationCacheSession session{pred};
  EXPECT_THROW(session.push(4, 0.5f), std::out_of_range);
  EXPECT_THROW(session.predict(5), std::invalid_argument);
}

}  // namespace
}  // namespace einet::predictor
