// Direct unit coverage for util/json.hpp — previously exercised only
// indirectly through the exporters. Escape round-trips, deep nesting,
// number edge cases, writer misuse, and a battery of malformed inputs the
// parser must reject with a typed error rather than mis-parse.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <limits>
#include <sstream>
#include <string>

#include "util/json.hpp"

namespace einet::util {
namespace {

std::string write(const std::function<void(JsonWriter&)>& body) {
  std::ostringstream out;
  JsonWriter w{out};
  body(w);
  EXPECT_TRUE(w.balanced());
  return out.str();
}

/// Write a single string value and parse it back.
std::string string_round_trip(const std::string& s) {
  std::ostringstream out;
  JsonWriter w{out};
  w.value(s);
  return json_parse(out.str()).as_string();
}

// ----------------------------------------------------------------- writer

TEST(JsonWriter, CompactObjectWithAllScalarKinds) {
  const auto text = write([](JsonWriter& w) {
    w.begin_object();
    w.kv("s", "hi");
    w.kv("i", std::int64_t{-3});
    w.kv("u", std::uint64_t{7});
    w.kv("d", 2.5);
    w.kv("b", true);
    w.key("n");
    w.null();
    w.end_object();
  });
  EXPECT_EQ(text, R"({"s":"hi","i":-3,"u":7,"d":2.5,"b":true,"n":null})");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  const auto text = write([](JsonWriter& w) {
    w.begin_array();
    w.value(std::numeric_limits<double>::quiet_NaN());
    w.value(std::numeric_limits<double>::infinity());
    w.value(-std::numeric_limits<double>::infinity());
    w.end_array();
  });
  EXPECT_EQ(text, "[null,null,null]");
  // The promise behind the substitution: the output always parses.
  const auto v = json_parse(text);
  for (const auto& e : v.as_array()) EXPECT_TRUE(e.is_null());
}

TEST(JsonWriter, MisuseThrowsLogicError) {
  {
    std::ostringstream out;
    JsonWriter w{out};
    w.begin_object();
    EXPECT_THROW(w.value(1), std::logic_error);  // value without key
  }
  {
    std::ostringstream out;
    JsonWriter w{out};
    w.begin_array();
    EXPECT_THROW(w.key("k"), std::logic_error);  // key outside object
  }
  {
    std::ostringstream out;
    JsonWriter w{out};
    w.begin_object();
    EXPECT_THROW(w.end_array(), std::logic_error);  // mismatched close
  }
  {
    std::ostringstream out;
    JsonWriter w{out};
    w.begin_object();
    w.key("dangling");
    EXPECT_THROW(w.end_object(), std::logic_error);  // key without value
  }
}

// ----------------------------------------------------- string round trips

TEST(JsonStrings, EscapeRoundTrips) {
  const std::string cases[] = {
      "",
      "plain",
      "with \"quotes\" and \\backslashes\\",
      "newline\ntab\tcr\rbackspace\bformfeed\f",
      std::string{"embedded\0nul", 12},
      "control \x01\x1f bytes",
      "utf-8 \xC3\xA9\xE2\x82\xAC passthrough",  // é€ as raw bytes
  };
  for (const auto& s : cases) EXPECT_EQ(string_round_trip(s), s) << s;
}

TEST(JsonStrings, UnicodeEscapesDecodeToUtf8) {
  EXPECT_EQ(json_parse(R"("\u0041")").as_string(), "A");
  EXPECT_EQ(json_parse(R"("\u00e9")").as_string(), "\xC3\xA9");      // é
  EXPECT_EQ(json_parse(R"("\u20ac")").as_string(), "\xE2\x82\xAC");  // €
  EXPECT_EQ(json_parse(R"("\u0000")").as_string(), std::string(1, '\0'));
  EXPECT_EQ(json_parse(R"("\/")").as_string(), "/");
}

// ---------------------------------------------------------------- numbers

TEST(JsonNumbers, EdgeCasesSurviveWriterRoundTrip) {
  const double cases[] = {0.0,
                          -0.0,
                          1e-300,
                          -1e300,
                          0.1,
                          1.0 / 3.0,
                          std::numeric_limits<double>::max(),
                          std::numeric_limits<double>::min(),
                          std::numeric_limits<double>::denorm_min(),
                          static_cast<double>(std::uint64_t{1} << 53)};
  for (const double d : cases) {
    std::ostringstream out;
    JsonWriter w{out};
    w.value(d);  // %.17g: shortest-or-exact round trip for doubles
    const double back = json_parse(out.str()).as_number();
    EXPECT_EQ(back, d) << out.str();
  }
}

TEST(JsonNumbers, ParserAcceptsStandardForms) {
  EXPECT_EQ(json_parse("0").as_number(), 0.0);
  EXPECT_EQ(json_parse("-17").as_number(), -17.0);
  EXPECT_EQ(json_parse("3.5e2").as_number(), 350.0);
  EXPECT_EQ(json_parse("2E-3").as_number(), 0.002);
  EXPECT_EQ(json_parse("  42  ").as_number(), 42.0);  // surrounding ws
}

TEST(JsonNumbers, MalformedNumbersRejected) {
  for (const char* bad : {"1.2.3", "1e", "--4", "+1", "nan", "inf", "0x10"})
    EXPECT_THROW((void)json_parse(bad), std::runtime_error) << bad;
}

// ---------------------------------------------------------------- nesting

TEST(JsonNesting, DeepArrayRoundTrips) {
  constexpr int kDepth = 200;
  std::string text;
  for (int i = 0; i < kDepth; ++i) text += '[';
  text += "1";
  for (int i = 0; i < kDepth; ++i) text += ']';
  const auto root = json_parse(text);
  const JsonValue* v = &root;
  for (int i = 0; i < kDepth; ++i) {
    ASSERT_EQ(v->kind(), JsonValue::Kind::kArray);
    ASSERT_EQ(v->as_array().size(), 1u);
    v = &v->as_array()[0];
  }
  EXPECT_EQ(v->as_number(), 1.0);
}

TEST(JsonNesting, MixedTreeAccessors) {
  const auto v = json_parse(
      R"({"metrics":{"p95":1.5,"count":3},"tags":["a","b"],"ok":true})");
  EXPECT_EQ(v.at("metrics").at("p95").as_number(), 1.5);
  EXPECT_EQ(v.at("metrics").number_or("count", -1.0), 3.0);
  EXPECT_EQ(v.at("metrics").number_or("missing", -1.0), -1.0);
  EXPECT_EQ(v.at("tags").as_array().at(1).as_string(), "b");
  EXPECT_TRUE(v.at("ok").as_bool());
  EXPECT_TRUE(v.has("tags"));
  EXPECT_FALSE(v.has("absent"));
  EXPECT_THROW((void)v.at("absent"), std::runtime_error);
  EXPECT_THROW((void)v.at("ok").as_number(), std::runtime_error);
}

TEST(JsonNesting, DuplicateKeysLastWins) {
  EXPECT_EQ(json_parse(R"({"k":1,"k":2})").at("k").as_number(), 2.0);
}

// --------------------------------------------------------- malformed input

TEST(JsonMalformed, RejectedWithRuntimeError) {
  const char* cases[] = {
      "",                      // empty document
      "   ",                   // whitespace only
      "{",                     // unterminated object
      "[1,2",                  // unterminated array
      "[1,]",                  // trailing comma
      "{\"k\":}",              // missing value
      "{\"k\" 1}",             // missing colon
      "{k:1}",                 // unquoted key
      "\"unterminated",        // unterminated string
      "\"bad \\q escape\"",    // unknown escape
      "\"trunc \\u00\"",       // truncated \u
      "\"bad \\uZZZZ\"",       // non-hex \u
      "\"raw \x01 control\"",  // raw control byte in string
      "tru",                   // truncated literal
      "null null",             // trailing garbage
      "{} []",                 // two documents
      "42 x",                  // garbage after number
  };
  for (const char* bad : cases)
    EXPECT_THROW((void)json_parse(bad), std::runtime_error) << bad;
}

TEST(JsonMalformed, ErrorMentionsOffset) {
  try {
    (void)json_parse("[1,,2]");
    FAIL() << "accepted malformed array";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string{e.what()}.find("offset"), std::string::npos);
  }
}

}  // namespace
}  // namespace einet::util
