// GEMM backend (nn/gemm.hpp): reference parity for all operand orientations,
// accumulate mode, the bit-identity-across-thread-counts contract, and the
// parallel_for scheduling semantics (coverage, nesting, exceptions).
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "nn/gemm.hpp"
#include "nn/tensor.hpp"
#include "util/rng.hpp"

namespace einet::nn {
namespace {

/// Restore the process-wide GEMM thread setting on scope exit so suites do
/// not leak configuration into each other.
struct ThreadGuard {
  std::size_t saved = gemm_threads();
  ~ThreadGuard() { set_gemm_threads(saved); }
};

std::vector<float> random_matrix(std::size_t elems, util::Rng& rng) {
  std::vector<float> m(elems);
  for (auto& v : m) v = rng.uniform_f(-1.0f, 1.0f);
  return m;
}

// Relative error with a unit magnitude floor: entries are reductions of up
// to k ~ 1e2 products of U(-1,1) values, so near-cancelled outputs carry
// absolute rounding noise of order k * eps regardless of implementation. The
// blocked kernel may contract multiply+add into FMAs while the reference
// rounds twice — a few-e-5 *absolute* wobble on cancelled entries is float
// arithmetic, not a kernel bug (indexing bugs show up as O(1) errors, and
// the bit-identity test pins the blocked kernel's own arithmetic exactly).
double rel_err(float a, float b) {
  const double scale =
      std::max({1.0, std::abs(static_cast<double>(a)), std::abs(static_cast<double>(b))});
  return std::abs(static_cast<double>(a) - static_cast<double>(b)) / scale;
}

void expect_close(const std::vector<float>& got, const std::vector<float>& want,
                  double tol = 1e-4) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i)
    ASSERT_LT(rel_err(got[i], want[i]), tol) << "element " << i;
}

struct Dims {
  std::size_t m, n, k;
};

// Includes sizes that are not multiples of any register tile, single
// rows/columns, and k == 1 (no reduction to reorder).
const Dims kDims[] = {{1, 1, 1},   {1, 10, 128}, {3, 5, 7},  {8, 16, 32},
                      {17, 23, 9}, {64, 100, 33}, {5, 1, 64}, {61, 77, 53}};

TEST(Sgemm, MatchesReferenceNoTrans) {
  util::Rng rng{41};
  for (const auto& d : kDims) {
    const auto a = random_matrix(d.m * d.k, rng);
    const auto b = random_matrix(d.k * d.n, rng);
    std::vector<float> got(d.m * d.n, -7.0f), want(d.m * d.n, -7.0f);
    sgemm(Trans::kN, Trans::kN, d.m, d.n, d.k, a.data(), d.k, b.data(), d.n,
          0.0f, got.data(), d.n);
    sgemm_reference(Trans::kN, Trans::kN, d.m, d.n, d.k, a.data(), d.k,
                    b.data(), d.n, 0.0f, want.data(), d.n);
    expect_close(got, want);
  }
}

TEST(Sgemm, MatchesReferenceTransB) {
  util::Rng rng{42};
  for (const auto& d : kDims) {
    const auto a = random_matrix(d.m * d.k, rng);
    const auto b = random_matrix(d.n * d.k, rng);  // stored (n x k)
    std::vector<float> got(d.m * d.n), want(d.m * d.n);
    sgemm(Trans::kN, Trans::kT, d.m, d.n, d.k, a.data(), d.k, b.data(), d.k,
          0.0f, got.data(), d.n);
    sgemm_reference(Trans::kN, Trans::kT, d.m, d.n, d.k, a.data(), d.k,
                    b.data(), d.k, 0.0f, want.data(), d.n);
    expect_close(got, want);
  }
}

TEST(Sgemm, MatchesReferenceTransA) {
  util::Rng rng{43};
  for (const auto& d : kDims) {
    const auto a = random_matrix(d.k * d.m, rng);  // stored (k x m)
    const auto b = random_matrix(d.k * d.n, rng);
    std::vector<float> got(d.m * d.n), want(d.m * d.n);
    sgemm(Trans::kT, Trans::kN, d.m, d.n, d.k, a.data(), d.m, b.data(), d.n,
          0.0f, got.data(), d.n);
    sgemm_reference(Trans::kT, Trans::kN, d.m, d.n, d.k, a.data(), d.m,
                    b.data(), d.n, 0.0f, want.data(), d.n);
    expect_close(got, want);
  }
}

TEST(Sgemm, BetaOneAccumulates) {
  util::Rng rng{44};
  const Dims d{19, 31, 27};
  const auto a = random_matrix(d.m * d.k, rng);
  const auto b = random_matrix(d.k * d.n, rng);
  const auto c0 = random_matrix(d.m * d.n, rng);
  std::vector<float> got = c0, want = c0;
  sgemm(Trans::kN, Trans::kN, d.m, d.n, d.k, a.data(), d.k, b.data(), d.n,
        1.0f, got.data(), d.n);
  sgemm_reference(Trans::kN, Trans::kN, d.m, d.n, d.k, a.data(), d.k, b.data(),
                  d.n, 1.0f, want.data(), d.n);
  expect_close(got, want);
}

TEST(Sgemm, RespectsLeadingDimensions) {
  // C is a 3x4 window inside a 3x10 row-major buffer; columns outside the
  // window must stay untouched.
  util::Rng rng{45};
  const std::size_t m = 3, n = 4, k = 5, ldc = 10;
  const auto a = random_matrix(m * k, rng);
  const auto b = random_matrix(k * n, rng);
  std::vector<float> got(m * ldc, 9.5f), want(m * ldc, 9.5f);
  sgemm(Trans::kN, Trans::kN, m, n, k, a.data(), k, b.data(), n, 0.0f,
        got.data(), ldc);
  sgemm_reference(Trans::kN, Trans::kN, m, n, k, a.data(), k, b.data(), n,
                  0.0f, want.data(), ldc);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = n; j < ldc; ++j)
      ASSERT_EQ(got[i * ldc + j], 9.5f) << "padding clobbered at " << i << "," << j;
  expect_close(got, want, 1e-5);
}

TEST(Sgemm, RejectsUnsupportedBeta) {
  float a = 1.0f, b = 1.0f, c = 0.0f;
  EXPECT_THROW(sgemm(Trans::kN, Trans::kN, 1, 1, 1, &a, 1, &b, 1, 0.5f, &c, 1),
               std::invalid_argument);
}

TEST(Sgemm, ZeroKWithBetaZeroClearsOutput) {
  std::vector<float> c(6, 3.0f);
  sgemm(Trans::kN, Trans::kN, 2, 3, 0, nullptr, 1, nullptr, 1, 0.0f, c.data(),
        3);
  for (float v : c) EXPECT_EQ(v, 0.0f);
}

// The determinism contract: identical bits for every thread-count setting.
TEST(Sgemm, BitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  util::Rng rng{46};
  const Dims shapes[] = {{61, 77, 53}, {8, 1024, 288}, {128, 33, 7}};
  for (const auto& d : shapes) {
    const auto a = random_matrix(d.m * d.k, rng);
    const auto b = random_matrix(d.k * d.n, rng);
    std::vector<float> c1(d.m * d.n), c4(d.m * d.n), c7(d.m * d.n);
    set_gemm_threads(1);
    sgemm(Trans::kN, Trans::kN, d.m, d.n, d.k, a.data(), d.k, b.data(), d.n,
          0.0f, c1.data(), d.n);
    set_gemm_threads(4);
    sgemm(Trans::kN, Trans::kN, d.m, d.n, d.k, a.data(), d.k, b.data(), d.n,
          0.0f, c4.data(), d.n);
    set_gemm_threads(7);
    sgemm(Trans::kN, Trans::kN, d.m, d.n, d.k, a.data(), d.k, b.data(), d.n,
          0.0f, c7.data(), d.n);
    EXPECT_EQ(0, std::memcmp(c1.data(), c4.data(), c1.size() * sizeof(float)));
    EXPECT_EQ(0, std::memcmp(c1.data(), c7.data(), c1.size() * sizeof(float)));
  }
}

// The small-problem threshold (sgemm caps chunks at one per 64 MFLOP) must
// not change results: sub-threshold products run inline on the calling
// thread, and the cap itself is invisible to the arithmetic — outputs stay
// bit-identical across thread counts on *both* sides of the boundary, and
// still match the reference. Sizes: 64x64x64 (~0.5 MFLOP, far below the
// threshold — the linear-layer regression case), 512x512x64 (~33 MFLOP, just
// below), 512x512x512 (~268 MFLOP, above — multi-chunk dispatch).
TEST(Sgemm, SmallProblemThresholdKeepsParityAndBitIdentity) {
  ThreadGuard guard;
  util::Rng rng{47};
  const Dims shapes[] = {{64, 64, 64}, {512, 512, 64}, {512, 512, 512}};
  for (const auto& d : shapes) {
    const auto a = random_matrix(d.m * d.k, rng);
    const auto b = random_matrix(d.k * d.n, rng);
    std::vector<float> c1(d.m * d.n), c8(d.m * d.n), want(d.m * d.n);
    set_gemm_threads(1);
    sgemm(Trans::kN, Trans::kN, d.m, d.n, d.k, a.data(), d.k, b.data(), d.n,
          0.0f, c1.data(), d.n);
    set_gemm_threads(8);
    sgemm(Trans::kN, Trans::kN, d.m, d.n, d.k, a.data(), d.k, b.data(), d.n,
          0.0f, c8.data(), d.n);
    EXPECT_EQ(0, std::memcmp(c1.data(), c8.data(), c1.size() * sizeof(float)))
        << d.m << "x" << d.n << "x" << d.k;
    sgemm_reference(Trans::kN, Trans::kN, d.m, d.n, d.k, a.data(), d.k,
                    b.data(), d.n, 0.0f, want.data(), d.n);
    expect_close(c1, want, 2e-4);
  }
}

TEST(ParallelFor, ChunkCapCoversEveryIndexExactlyOnce) {
  ThreadGuard guard;
  set_gemm_threads(8);
  for (std::size_t cap : {0u, 1u, 2u, 5u, 100u}) {
    std::vector<int> hits(64, 0);
    parallel_for(64, cap, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) ++hits[i];
    });
    for (std::size_t i = 0; i < hits.size(); ++i)
      ASSERT_EQ(hits[i], 1) << "cap " << cap << " index " << i;
  }
}

TEST(GemmThreads, DefaultIsAtLeastOneAndSetterClamps) {
  ThreadGuard guard;
  EXPECT_GE(gemm_threads(), 1u);
  set_gemm_threads(0);
  EXPECT_EQ(gemm_threads(), 1u);
  set_gemm_threads(3);
  EXPECT_EQ(gemm_threads(), 3u);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadGuard guard;
  for (std::size_t nt : {1u, 4u}) {
    set_gemm_threads(nt);
    for (std::size_t n : {0u, 1u, 3u, 64u, 1000u}) {
      std::vector<int> hits(n, 0);
      parallel_for(n, [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) ++hits[i];
      });
      for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i], 1) << i;
    }
  }
}

TEST(ParallelFor, NestedCallsRunInlineAndStillCover) {
  ThreadGuard guard;
  set_gemm_threads(4);
  std::vector<std::atomic<int>> hits(64);
  parallel_for(8, [&](std::size_t b, std::size_t e) {
    for (std::size_t outer = b; outer < e; ++outer) {
      parallel_for(8, [&](std::size_t ib, std::size_t ie) {
        for (std::size_t inner = ib; inner < ie; ++inner)
          hits[outer * 8 + inner].fetch_add(1, std::memory_order_relaxed);
      });
    }
  });
  for (auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(ParallelFor, PropagatesBodyException) {
  ThreadGuard guard;
  set_gemm_threads(4);
  EXPECT_THROW(
      parallel_for(16,
                   [&](std::size_t b, std::size_t) {
                     if (b == 0) throw std::runtime_error{"chunk failure"};
                   }),
      std::runtime_error);
  // The pool must still be usable afterwards.
  std::vector<int> hits(16, 0);
  parallel_for(16, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) ++hits[i];
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

}  // namespace
}  // namespace einet::nn
