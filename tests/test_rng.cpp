#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "util/rng.hpp"

namespace einet::util {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a{42}, b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a{7};
  const auto first = a();
  a.reseed(7);
  EXPECT_EQ(a(), first);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng{3};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng{4};
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.5, 7.5);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 7.5);
  }
}

TEST(Rng, UniformMeanApproximatelyHalf) {
  Rng rng{5};
  double acc = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) acc += rng.uniform();
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, UniformIntWithinBound) {
  Rng rng{6};
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.uniform_int(17), 17u);
}

TEST(Rng, UniformIntCoversAllValues) {
  Rng rng{8};
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) ++counts[rng.uniform_int(10)];
  for (int c : counts) EXPECT_GT(c, 700);
}

TEST(Rng, UniformIntZeroThrows) {
  Rng rng{9};
  EXPECT_THROW(rng.uniform_int(0), std::invalid_argument);
}

TEST(Rng, GaussianMoments) {
  Rng rng{10};
  const int n = 200000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, GaussianShifted) {
  Rng rng{11};
  double acc = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) acc += rng.gaussian(3.0, 0.5);
  EXPECT_NEAR(acc / n, 3.0, 0.02);
}

TEST(Rng, BernoulliRate) {
  Rng rng{12};
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng{13};
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto w = v;
  rng.shuffle(w);
  EXPECT_NE(v, w);  // astronomically unlikely to be identity
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng rng{14};
  Rng child = rng.split();
  // The child stream must not mirror the parent stream.
  int same = 0;
  for (int i = 0; i < 50; ++i)
    if (rng() == child()) ++same;
  EXPECT_LT(same, 3);
}

}  // namespace
}  // namespace einet::util
