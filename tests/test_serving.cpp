// Serving-subsystem suite: queue semantics under contention, admission
// decisions, metrics lifecycle consistency, graceful shutdown with in-flight
// tasks, predictor replication, and worker-count invariance of aggregate
// results (the determinism contract from DESIGN.md §5).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

#include "core/time_distribution.hpp"
#include "nn/quant/profile.hpp"
#include "predictor/cs_predictor.hpp"
#include "serving/admission.hpp"
#include "serving/metrics.hpp"
#include "serving/replicate.hpp"
#include "serving/server.hpp"
#include "serving/task_queue.hpp"
#include "util/rng.hpp"

namespace einet::serving {
namespace {

// ---------------------------------------------------------------- fixtures

profiling::ETProfile tiny_et() {
  profiling::ETProfile et;
  et.model_name = "tiny";
  et.platform_name = "test";
  et.conv_ms = {1.0, 1.0, 1.0, 1.0};
  et.branch_ms = {0.5, 0.5, 0.5, 0.5};
  return et;
}

profiling::CSProfile tiny_cs(std::size_t records, std::uint64_t seed = 7) {
  profiling::CSProfile cs;
  cs.model_name = "tiny";
  cs.dataset_name = "synthetic";
  cs.num_exits = 4;
  util::Rng rng{seed};
  for (std::size_t r = 0; r < records; ++r) {
    profiling::CSRecord rec;
    float conf = rng.uniform_f(0.2f, 0.5f);
    for (std::size_t e = 0; e < cs.num_exits; ++e) {
      conf = std::min(1.0f, conf + rng.uniform_f(0.0f, 0.2f));
      rec.confidence.push_back(conf);
      rec.correct.push_back(rng.bernoulli(conf) ? 1 : 0);
    }
    rec.label = r % 10;
    cs.records.push_back(std::move(rec));
  }
  cs.validate();
  return cs;
}

/// A predictor-less EINet runner planning from fallback confidences.
TaskRunner einet_runner(const core::TimeDistribution& dist) {
  return [&dist](runtime::ElasticEngine& engine, const Task& task,
                 util::Rng&) {
    return engine.run(*task.record, task.deadline_ms, dist);
  };
}

// -------------------------------------------------------------- TaskQueue

TEST(TaskQueue, FifoSingleThread) {
  BoundedQueue<int> q{8};
  for (int i = 0; i < 5; ++i) EXPECT_EQ(q.push(i), PushResult::kAccepted);
  EXPECT_EQ(q.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(q.pop(), i);
  EXPECT_EQ(q.size(), 0u);
}

TEST(TaskQueue, RejectsWhenFullUnderRejectPolicy) {
  BoundedQueue<int> q{2, OverflowPolicy::kReject};
  EXPECT_EQ(q.push(1), PushResult::kAccepted);
  EXPECT_EQ(q.push(2), PushResult::kAccepted);
  EXPECT_EQ(q.push(3), PushResult::kRejected);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.push(3), PushResult::kAccepted);
}

TEST(TaskQueue, RejectsZeroCapacity) {
  EXPECT_THROW(BoundedQueue<int>(0), std::invalid_argument);
}

TEST(TaskQueue, BlockingPushWaitsForSpace) {
  BoundedQueue<int> q{1, OverflowPolicy::kBlock};
  EXPECT_EQ(q.push(1), PushResult::kAccepted);
  std::thread producer{[&] { EXPECT_EQ(q.push(2), PushResult::kAccepted); }};
  // The producer is blocked until this pop frees the slot.
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  producer.join();
}

TEST(TaskQueue, CloseWakesBlockedConsumer) {
  BoundedQueue<int> q{4};
  std::thread consumer{[&] { EXPECT_EQ(q.pop(), std::nullopt); }};
  q.close();
  consumer.join();
}

TEST(TaskQueue, CloseWakesBlockedProducer) {
  BoundedQueue<int> q{1, OverflowPolicy::kBlock};
  EXPECT_EQ(q.push(1), PushResult::kAccepted);
  std::thread producer{[&] { EXPECT_EQ(q.push(2), PushResult::kClosed); }};
  q.close();
  producer.join();
}

TEST(TaskQueue, CloseDrainsAcceptedItemsThenEnds) {
  BoundedQueue<int> q{8};
  for (int i = 0; i < 3; ++i) EXPECT_EQ(q.push(i), PushResult::kAccepted);
  q.close();
  EXPECT_EQ(q.push(9), PushResult::kClosed);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(q.pop(), i);
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(TaskQueue, MpmcContentionDeliversEveryItemExactlyOnce) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 500;
  BoundedQueue<int> q{8, OverflowPolicy::kBlock};

  std::vector<std::vector<int>> received(kConsumers);
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c)
    consumers.emplace_back([&, c] {
      while (auto v = q.pop()) received[c].push_back(*v);
    });

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p)
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i)
        ASSERT_EQ(q.push(p * kPerProducer + i), PushResult::kAccepted);
    });
  for (auto& t : producers) t.join();
  q.close();
  for (auto& t : consumers) t.join();

  std::vector<int> all;
  for (const auto& r : received) all.insert(all.end(), r.begin(), r.end());
  ASSERT_EQ(all.size(), static_cast<std::size_t>(kProducers * kPerProducer));
  std::sort(all.begin(), all.end());
  for (int i = 0; i < kProducers * kPerProducer; ++i) EXPECT_EQ(all[i], i);
}

// -------------------------------------------------------------- Admission

TEST(Admission, FirstExitFloorFromProfile) {
  const AdmissionController adm{tiny_et()};
  EXPECT_DOUBLE_EQ(adm.first_exit_ms(), 1.5);
  EXPECT_TRUE(adm.admit(1.5));
  EXPECT_TRUE(adm.admit(10.0));
  EXPECT_FALSE(adm.admit(1.49));
  EXPECT_FALSE(adm.admit(0.0));
}

TEST(Admission, SlackScalesTheThreshold) {
  const AdmissionController adm{tiny_et(), {.slack = 2.0}};
  EXPECT_DOUBLE_EQ(adm.threshold_ms(), 3.0);
  EXPECT_FALSE(adm.admit(2.9));
  EXPECT_TRUE(adm.admit(3.0));
}

TEST(Admission, RejectsSubUnitSlack) {
  EXPECT_THROW(AdmissionController(tiny_et(), {.slack = 0.5}),
               std::invalid_argument);
}

// ---------------------------------------------------------------- Metrics

TEST(Metrics, LifecycleCountersAndRates) {
  MetricsRegistry m;
  for (int i = 0; i < 10; ++i) m.on_submitted();
  for (int i = 0; i < 6; ++i) m.on_admitted();
  for (int i = 0; i < 3; ++i) m.on_shed();
  m.on_rejected();

  TaskResult ok;
  ok.outcome.has_result = true;
  ok.outcome.correct = true;
  ok.queue_wait_ms = 1.0;
  ok.end_to_end_ms = 2.0;
  TaskResult wrong;
  wrong.outcome.has_result = true;
  wrong.outcome.correct = false;
  TaskResult empty;  // no result before the deadline
  m.on_completed(ok);
  m.on_completed(wrong);
  m.on_completed(empty);

  const auto snap = m.snapshot();
  EXPECT_EQ(snap.submitted, 10u);
  EXPECT_EQ(snap.admitted, 6u);
  EXPECT_EQ(snap.shed, 3u);
  EXPECT_EQ(snap.rejected, 1u);
  EXPECT_EQ(snap.completed, 3u);
  EXPECT_EQ(snap.valid, 2u);
  EXPECT_EQ(snap.correct, 1u);
  EXPECT_DOUBLE_EQ(snap.valid_rate(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(snap.accuracy(), 1.0 / 3.0);
  EXPECT_EQ(snap.queue_wait.stats.count(), 3u);
  EXPECT_EQ(snap.end_to_end.stats.count(), 3u);
  EXPECT_GT(snap.end_to_end.p95_ms, 0.0);
  EXPECT_NE(snap.to_string().find("accuracy"), std::string::npos);
}

TEST(Metrics, EmptySnapshotIsAllZero) {
  const auto snap = MetricsRegistry{}.snapshot();
  EXPECT_EQ(snap.submitted, 0u);
  EXPECT_DOUBLE_EQ(snap.valid_rate(), 0.0);
  EXPECT_DOUBLE_EQ(snap.accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(snap.queue_wait.p99_ms, 0.0);
}

// -------------------------------------------------------------- Replicate

TEST(Replicate, CloneMatchesSourcePredictions) {
  const auto cs = tiny_cs(40);
  predictor::CSPredictorConfig pc;
  pc.hidden = 8;
  pc.epochs = 4;
  predictor::CSPredictor source{cs.num_exits, pc};
  source.train(cs);

  const auto clone = clone_predictor(source);
  util::Rng rng{11};
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<float> observed(cs.num_exits, 0.0f);
    const auto executed = 1 + rng.uniform_int(cs.num_exits - 1);
    for (std::size_t e = 0; e < executed; ++e)
      observed[e] = rng.uniform_f(0.0f, 1.0f);
    EXPECT_EQ(source.predict(observed, executed),
              clone->predict(observed, executed));
  }
}

TEST(Replicate, CloneWeightsAreByteIdentical) {
  // The clone is a direct tensor copy, not a text serialization round-trip:
  // every parameter must match the source bit for bit, not just to the
  // precision decimal formatting happens to preserve.
  const auto cs = tiny_cs(40);
  predictor::CSPredictorConfig pc;
  pc.hidden = 8;
  pc.epochs = 4;
  predictor::CSPredictor source{cs.num_exits, pc};
  source.train(cs);

  const auto clone = clone_predictor(source);
  const auto src = source.params();
  const auto dst = clone->params();
  ASSERT_EQ(src.size(), dst.size());
  for (std::size_t i = 0; i < src.size(); ++i) {
    ASSERT_EQ(src[i]->value.numel(), dst[i]->value.numel());
    EXPECT_EQ(0, std::memcmp(src[i]->value.raw(), dst[i]->value.raw(),
                             src[i]->value.numel() * sizeof(float)))
        << "param " << i << " (" << src[i]->name << ")";
  }
}

TEST(Replicate, FactoryOutlivesEveryInputItWasBuiltFrom) {
  // Regression: the factory used to capture the ET profile by reference and
  // the predictor by raw pointer, so a factory (or the WorkerPool that
  // copied it) outliving either was a use-after-free. It now owns copies of
  // both; this test destroys the sources before building engines (the ASan
  // CI job turns any residual dangling read into a hard failure).
  const auto cs = tiny_cs(40);
  const core::UniformExitDistribution dist{tiny_et().total_ms()};
  const double deadline = 0.9 * tiny_et().total_ms();

  EngineFactory factory;
  runtime::InferenceOutcome ref;
  {
    const auto et = tiny_et();
    predictor::CSPredictorConfig pc;
    pc.hidden = 8;
    pc.epochs = 4;
    predictor::CSPredictor pred{cs.num_exits, pc};
    pred.train(cs);
    factory = make_replicated_engine_factory(et, &pred, {});
    ref = factory(0)->run(cs.records[0], deadline, dist);
  }  // `et` and `pred` are gone; the factory must stay self-sufficient.

  const auto engine = factory(1);
  const auto out = engine->run(cs.records[0], deadline, dist);
  EXPECT_EQ(out.has_result, ref.has_result);
  EXPECT_EQ(out.exit_index, ref.exit_index);
  EXPECT_EQ(out.correct, ref.correct);
  EXPECT_EQ(out.result_time_ms, ref.result_time_ms);
  EXPECT_EQ(out.branches_executed, ref.branches_executed);
  EXPECT_EQ(out.searches_run, ref.searches_run);
  EXPECT_EQ(out.completed, ref.completed);
}

TEST(Metrics, MemoryGaugesSurfaceInSnapshotAndJson) {
  MetricsRegistry registry;
  EXPECT_FALSE(registry.snapshot().has_memory);

  MemoryGauges gauges;
  gauges.workers = 3;
  gauges.weight_bytes = 1000;
  gauges.bytes_per_worker = 200;
  gauges.planned_total_bytes = 1600;
  registry.set_memory(gauges);

  const auto snap = registry.snapshot();
  ASSERT_TRUE(snap.has_memory);
  EXPECT_EQ(snap.memory.workers, 3u);
  EXPECT_EQ(snap.memory.weight_bytes, 1000u);
  EXPECT_EQ(snap.memory.bytes_per_worker, 200u);
  EXPECT_EQ(snap.memory.planned_total_bytes, 1600u);
#ifdef __linux__
  // RSS is sampled live and must dominate the planned bytes of this tiny
  // configuration by orders of magnitude.
  EXPECT_GE(snap.rss_bytes, snap.memory.planned_total_bytes);
#endif
  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"memory\""), std::string::npos);
  EXPECT_NE(json.find("\"bytes_per_worker\""), std::string::npos);
  EXPECT_NE(json.find("\"rss_bytes\""), std::string::npos);
  EXPECT_NE(snap.to_string().find("arena/worker"), std::string::npos);
}

// ------------------------------------------------------------- EdgeServer

TEST(EdgeServer, GracefulShutdownDrainsInFlightTasks) {
  const auto et = tiny_et();
  const auto cs = tiny_cs(32);
  const core::UniformExitDistribution dist{et.total_ms()};

  ServerConfig config;
  config.queue_capacity = 512;
  config.pool.num_workers = 3;
  EdgeServer server{
      et,
      make_replicated_engine_factory(et, nullptr, {},
                                     std::vector<float>(4, 0.5f)),
      einet_runner(dist), config};

  util::Rng rng{3};
  std::size_t queued = 0;
  for (int i = 0; i < 200; ++i) {
    const auto& rec = cs.records[rng.uniform_int(cs.size())];
    if (server.submit(rec, rng.uniform(0.0, 1.5 * et.total_ms())) ==
        SubmitStatus::kQueued)
      ++queued;
  }
  server.shutdown();  // must drain everything accepted above

  const auto snap = server.metrics();
  EXPECT_EQ(snap.submitted, 200u);
  EXPECT_EQ(snap.admitted, queued);
  EXPECT_EQ(snap.submitted, snap.admitted + snap.shed + snap.rejected);
  EXPECT_EQ(snap.completed, snap.admitted);  // nothing accepted was dropped
  EXPECT_LE(snap.valid, snap.completed);
  EXPECT_LE(snap.correct, snap.valid);
  EXPECT_GT(snap.shed, 0u);  // budgets below 1.5 ms exist in this stream
  EXPECT_EQ(server.submit(cs.records[0], 10.0), SubmitStatus::kClosed);
}

TEST(EdgeServer, ShedsInfeasibleDeadlinesBeforeQueueing) {
  const auto et = tiny_et();
  const auto cs = tiny_cs(4);
  const core::UniformExitDistribution dist{et.total_ms()};
  EdgeServer server{
      et,
      make_replicated_engine_factory(et, nullptr, {},
                                     std::vector<float>(4, 0.5f)),
      einet_runner(dist)};
  EXPECT_EQ(server.submit(cs.records[0], 0.3), SubmitStatus::kShed);
  EXPECT_EQ(server.submit(cs.records[0], 5.0), SubmitStatus::kQueued);
  server.shutdown();
  const auto snap = server.metrics();
  EXPECT_EQ(snap.shed, 1u);
  EXPECT_EQ(snap.completed, 1u);
}

// Precision attribution (DESIGN.md §16): every completion is paired with the
// trunk that served it, and the pairing is derived from ground truth (the
// replica's "-q8" profile tag), not from what the config merely asked for.
TEST(EdgeServer, QuantAccountingCountsInt8Completions) {
  const auto et_q8 = nn::quant::quantized_execution_time(tiny_et());
  const auto cs = tiny_cs(16);
  const core::UniformExitDistribution dist{et_q8.total_ms()};

  ServerConfig config;
  config.pool.num_workers = 2;
  config.quant = QuantMode::kInt8;
  EdgeServer server{
      et_q8,
      make_replicated_engine_factory(et_q8, nullptr, {},
                                     std::vector<float>(4, 0.5f)),
      einet_runner(dist), config};
  server.registry().set_quant({.enabled = true, .weight_bytes = 1024});
  for (int i = 0; i < 40; ++i)
    server.submit(cs.records[i % cs.size()], 2.0 * et_q8.total_ms());
  server.shutdown();

  const auto snap = server.metrics();
  ASSERT_GT(snap.completed, 0u);
  EXPECT_EQ(snap.quant_int8, snap.completed);
  EXPECT_EQ(snap.quant_fp32, 0u);
  EXPECT_EQ(snap.quant_fallbacks, 0u);
  EXPECT_TRUE(snap.has_quant);
  EXPECT_NE(snap.to_json().find("\"quant\""), std::string::npos);
}

TEST(EdgeServer, QuantFallbackWhenInt8RequestedOnFp32Replicas) {
  const auto et = tiny_et();  // fp32 artifact set: no "-q8" tag
  const auto cs = tiny_cs(8);
  const core::UniformExitDistribution dist{et.total_ms()};

  ServerConfig config;
  config.quant = QuantMode::kInt8;  // asked for int8, wired fp32 replicas
  EdgeServer server{
      et,
      make_replicated_engine_factory(et, nullptr, {},
                                     std::vector<float>(4, 0.5f)),
      einet_runner(dist), config};
  for (int i = 0; i < 20; ++i)
    server.submit(cs.records[i % cs.size()], 2.0 * et.total_ms());
  server.shutdown();

  const auto snap = server.metrics();
  ASSERT_GT(snap.completed, 0u);
  EXPECT_EQ(snap.quant_fp32, snap.completed);
  EXPECT_EQ(snap.quant_int8, 0u);
  EXPECT_EQ(snap.quant_fallbacks, snap.completed);
}

TEST(EdgeServer, QuantCountersTickFp32UnderDefaultMode) {
  const auto et = tiny_et();
  const auto cs = tiny_cs(4);
  const core::UniformExitDistribution dist{et.total_ms()};
  EdgeServer server{
      et,
      make_replicated_engine_factory(et, nullptr, {},
                                     std::vector<float>(4, 0.5f)),
      einet_runner(dist)};
  for (int i = 0; i < 10; ++i)
    server.submit(cs.records[i % cs.size()], 2.0 * et.total_ms());
  server.shutdown();

  const auto snap = server.metrics();
  ASSERT_GT(snap.completed, 0u);
  // The counters run unconditionally (the invariant int8 + fp32 ==
  // completed must hold whenever accounting is later rendered); without
  // set_quant the snapshot simply does not render the block.
  EXPECT_EQ(snap.quant_fp32, snap.completed);
  EXPECT_EQ(snap.quant_int8 + snap.quant_fallbacks, 0u);
  EXPECT_FALSE(snap.has_quant);
  EXPECT_EQ(snap.to_json().find("\"quant\""), std::string::npos);
}

TEST(EdgeServer, OverflowRejectsWhenQueueIsFull) {
  const auto et = tiny_et();
  const auto cs = tiny_cs(4);

  // Gate the single worker inside its first task so the queue fills
  // deterministically: 1 task in flight + 2 queued, everything else rejected.
  std::mutex mu;
  std::condition_variable cv;
  bool started = false;
  bool release = false;
  const TaskRunner gated = [&](runtime::ElasticEngine& engine,
                               const Task& task, util::Rng&) {
    {
      std::unique_lock lock{mu};
      started = true;
      cv.notify_all();
      cv.wait(lock, [&] { return release; });
    }
    return engine.run_static(*task.record, core::ExitPlan{4, true},
                             task.deadline_ms);
  };

  ServerConfig config;
  config.queue_capacity = 2;
  config.pool.num_workers = 1;
  EdgeServer server{
      et,
      make_replicated_engine_factory(et, nullptr, {},
                                     std::vector<float>(4, 0.5f)),
      gated, config};

  ASSERT_EQ(server.submit(cs.records[0], 10.0), SubmitStatus::kQueued);
  {
    std::unique_lock lock{mu};
    cv.wait(lock, [&] { return started; });  // worker holds task 0
  }
  EXPECT_EQ(server.submit(cs.records[1], 10.0), SubmitStatus::kQueued);
  EXPECT_EQ(server.submit(cs.records[2], 10.0), SubmitStatus::kQueued);
  EXPECT_EQ(server.submit(cs.records[3], 10.0), SubmitStatus::kRejected);
  EXPECT_EQ(server.submit(cs.records[3], 10.0), SubmitStatus::kRejected);
  {
    std::lock_guard lock{mu};
    release = true;
  }
  cv.notify_all();
  server.shutdown();

  const auto snap = server.metrics();
  EXPECT_EQ(snap.admitted, 3u);
  EXPECT_EQ(snap.rejected, 2u);
  EXPECT_EQ(snap.completed, 3u);
}

// The determinism contract: aggregate results of a fixed task stream are a
// pure function of the stream, independent of worker count and scheduling.
TEST(EdgeServer, AggregateResultsInvariantAcrossWorkerCounts) {
  const auto et = tiny_et();
  const auto cs = tiny_cs(64);
  const core::UniformExitDistribution dist{et.total_ms()};

  predictor::CSPredictorConfig pc;
  pc.hidden = 8;
  pc.epochs = 4;
  predictor::CSPredictor pred{cs.num_exits, pc};
  pred.train(cs);

  // Precompute the stream so every server sees the identical workload.
  util::Rng rng{2024};
  std::vector<std::pair<std::size_t, double>> stream;
  for (int i = 0; i < 300; ++i)
    stream.emplace_back(rng.uniform_int(cs.size()),
                        rng.uniform(0.0, 1.4 * et.total_ms()));

  const auto run_with = [&](std::size_t workers) {
    ServerConfig config;
    config.queue_capacity = 1024;
    config.pool.num_workers = workers;
    EdgeServer server{et, make_replicated_engine_factory(et, &pred, {}),
                      einet_runner(dist), config};
    for (const auto& [idx, deadline] : stream)
      server.submit(cs.records[idx], deadline);
    server.shutdown();
    return server.metrics();
  };

  const auto one = run_with(1);
  const auto four = run_with(4);
  EXPECT_EQ(one.completed, four.completed);
  EXPECT_EQ(one.valid, four.valid);
  EXPECT_EQ(one.correct, four.correct);
  EXPECT_EQ(one.shed, four.shed);
  EXPECT_DOUBLE_EQ(one.accuracy(), four.accuracy());
}

}  // namespace
}  // namespace einet::serving
