#include <gtest/gtest.h>

#include "runtime/evaluator.hpp"

namespace einet::runtime {
namespace {

profiling::ETProfile toy_et(std::size_t n = 4) {
  profiling::ETProfile et;
  et.model_name = "toy";
  et.platform_name = "sim";
  et.conv_ms.assign(n, 1.0);
  et.branch_ms.assign(n, 0.5);
  return et;
}

/// Synthetic profile where confidence tracks correctness probability and
/// both improve with depth.
profiling::CSProfile toy_cs(std::size_t n = 4, std::size_t samples = 120,
                            std::uint64_t seed = 3) {
  profiling::CSProfile cs;
  cs.model_name = "toy";
  cs.dataset_name = "synth";
  cs.num_exits = n;
  util::Rng rng{seed};
  for (std::size_t s = 0; s < samples; ++s) {
    profiling::CSRecord r;
    r.label = 0;
    const float base = rng.uniform_f(0.25f, 0.55f);
    for (std::size_t e = 0; e < n; ++e) {
      const float conf = std::clamp(
          base + 0.4f * static_cast<float>(e) / static_cast<float>(n), 0.0f,
          0.99f);
      r.confidence.push_back(conf);
      r.correct.push_back(static_cast<std::uint8_t>(rng.bernoulli(conf)));
    }
    cs.records.push_back(std::move(r));
  }
  return cs;
}

TEST(Evaluator, ConstructionValidates) {
  const auto et = toy_et();
  const auto cs = toy_cs();
  core::UniformExitDistribution dist{et.total_ms()};
  EXPECT_NO_THROW((Evaluator{et, cs, dist}));
  const auto cs3 = toy_cs(3);
  EXPECT_THROW((Evaluator{et, cs3, dist}), std::invalid_argument);
}

TEST(Evaluator, StatsAreInternallyConsistent) {
  const auto et = toy_et();
  const auto cs = toy_cs();
  core::UniformExitDistribution dist{et.total_ms()};
  Evaluator ev{et, cs, dist};
  const auto s = ev.eval_static(core::ExitPlan{4, true}, "all", 2);
  EXPECT_EQ(s.trials, 2 * cs.size());
  EXPECT_GE(s.accuracy, 0.0);
  EXPECT_LE(s.accuracy, 1.0);
  EXPECT_LE(s.accuracy, 1.0 - s.no_result_rate + 1e-12);
  EXPECT_GE(s.avg_branches, 0.0);
  EXPECT_LE(s.avg_branches, 4.0);
}

TEST(Evaluator, PairedDeadlinesAcrossStrategies) {
  // The no-result rate of the all-branches static plan and of the threshold
  // runner with an unreachable threshold must be identical: same deadline
  // sequence, same execution timeline.
  const auto et = toy_et();
  const auto cs = toy_cs();
  core::UniformExitDistribution dist{et.total_ms()};
  Evaluator ev{et, cs, dist};
  const auto a = ev.eval_static(core::ExitPlan{4, true}, "all", 3);
  const auto b = ev.eval_threshold(2.0, 3);  // threshold never reached
  EXPECT_DOUBLE_EQ(a.no_result_rate, b.no_result_rate);
  EXPECT_DOUBLE_EQ(a.accuracy, b.accuracy);
}

TEST(Evaluator, EinetBeatsSparseStaticPlans) {
  const auto et = toy_et();
  const auto cs = toy_cs(4, 200);
  core::UniformExitDistribution dist{et.total_ms()};
  Evaluator ev{et, cs, dist};
  ElasticConfig cfg;
  const auto einet = ev.eval_einet(nullptr, cfg, 3);
  const auto s25 =
      ev.eval_static(core::ExitPlan::static_fraction(4, 0.25), "s25", 3);
  EXPECT_GT(einet.accuracy, s25.accuracy - 0.02);
}

TEST(Evaluator, OracleIsAtLeastAsGoodAsMeanFallback) {
  const auto et = toy_et();
  const auto cs = toy_cs(4, 200);
  core::UniformExitDistribution dist{et.total_ms()};
  Evaluator ev{et, cs, dist};
  ElasticConfig mean_cfg;
  ElasticConfig oracle_cfg;
  oracle_cfg.oracle_predictor = true;
  const auto mean = ev.eval_einet(nullptr, mean_cfg, 3);
  const auto oracle = ev.eval_einet(nullptr, oracle_cfg, 3);
  // In this synthetic profile per-sample confidences carry real signal.
  EXPECT_GE(oracle.accuracy, mean.accuracy - 0.03);
}

TEST(Evaluator, SingleExitRequiresOneExitProfile) {
  const auto et = toy_et();
  const auto cs = toy_cs();
  core::UniformExitDistribution dist{et.total_ms()};
  Evaluator ev{et, cs, dist};
  EXPECT_THROW(ev.eval_single_exit(cs, 1.0, "classic"),
               std::invalid_argument);
  const auto single = toy_cs(1, 120);
  const auto s = ev.eval_single_exit(single, et.total_ms() * 0.5, "classic");
  // Uniform deadline over [0, T]: the single-exit model finishes for about
  // half the trials.
  EXPECT_NEAR(s.no_result_rate, 0.5, 0.1);
}

TEST(Evaluator, MaxSamplesLimitsTrials) {
  const auto et = toy_et();
  const auto cs = toy_cs();
  core::UniformExitDistribution dist{et.total_ms()};
  Evaluator ev{et, cs, dist};
  const auto s = ev.eval_static(core::ExitPlan{4, true}, "all", 1, 10);
  EXPECT_EQ(s.trials, 10u);
}

TEST(Evaluator, RejectsZeroRepeats) {
  const auto et = toy_et();
  const auto cs = toy_cs();
  core::UniformExitDistribution dist{et.total_ms()};
  Evaluator ev{et, cs, dist};
  EXPECT_THROW(ev.eval_static(core::ExitPlan{4, true}, "all", 0),
               std::invalid_argument);
}

TEST(StaticOptimalPlan, BeatsNaiveStaticPlansInExpectation) {
  const auto et = toy_et();
  const auto cs = toy_cs(4, 300);
  core::UniformExitDistribution dist{et.total_ms()};
  const auto opt = find_static_optimal_plan(et, cs, dist);

  const auto acc = cs.exit_accuracy();
  const std::vector<float> conf{acc.begin(), acc.end()};
  const double e_opt =
      core::accuracy_expectation(opt, et.conv_ms, et.branch_ms, conf, dist);
  for (double f : {0.25, 0.5, 1.0}) {
    const double e = core::accuracy_expectation(
        core::ExitPlan::static_fraction(4, f), et.conv_ms, et.branch_ms, conf,
        dist);
    EXPECT_GE(e_opt, e - 1e-12) << "fraction " << f;
  }
}

TEST(StaticOptimalPlan, WorksForLargeExitCounts) {
  // > 20 exits takes the hybrid-search path.
  const auto et = toy_et(25);
  const auto cs = toy_cs(25, 60);
  core::UniformExitDistribution dist{et.total_ms()};
  const auto opt = find_static_optimal_plan(et, cs, dist);
  EXPECT_EQ(opt.size(), 25u);
  EXPECT_GT(opt.num_outputs(), 0u);
}

}  // namespace
}  // namespace einet::runtime
