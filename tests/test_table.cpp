#include <gtest/gtest.h>

#include "util/logging.hpp"
#include "util/table.hpp"

namespace einet::util {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t{{"name", "value"}};
  t.add_row({"alpha", "1.00"});
  t.add_row({"beta", "22.50"});
  const std::string s = t.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22.50"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RejectsMismatchedRow) {
  Table t{{"a", "b"}};
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table{{}}, std::invalid_argument);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
  EXPECT_EQ(Table::pct(12.345, 1), "12.3%");
}

TEST(Table, CsvOutput) {
  Table t{{"x", "y"}};
  t.add_row({"1", "2"});
  EXPECT_EQ(t.csv(), "x,y\n1,2\n");
}

TEST(Table, NumericCellsRightAligned) {
  Table t{{"col"}};
  t.add_row({"1.5"});
  t.add_row({"lefty"});
  const std::string s = t.str();
  // "1.5" padded on the left, "lefty" padded on the right.
  EXPECT_NE(s.find("   1.5 |"), std::string::npos);
  EXPECT_NE(s.find(" lefty |"), std::string::npos);
}

TEST(Logging, LevelFilteringRoundTrip) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Below-threshold messages are dropped silently (no crash, no output
  // assertion possible without capturing streams; exercised for coverage).
  EINET_LOG(Debug) << "dropped " << 42;
  set_log_level(before);
  EXPECT_EQ(log_level(), before);
}

}  // namespace
}  // namespace einet::util
