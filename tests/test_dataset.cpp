#include <gtest/gtest.h>

#include <set>

#include "data/synthetic.hpp"

namespace einet::data {
namespace {

SyntheticSpec tiny_spec() {
  SyntheticSpec s;
  s.name = "tiny";
  s.channels = 1;
  s.height = 8;
  s.width = 8;
  s.num_classes = 4;
  s.train_count = 40;
  s.test_count = 20;
  s.seed = 5;
  return s;
}

TEST(InMemoryDataset, ValidatesLabelsAndShapes) {
  std::vector<Sample> good;
  good.push_back({nn::Tensor{{1, 2, 2}}, 0});
  EXPECT_NO_THROW((InMemoryDataset{"x", std::move(good), 2}));

  std::vector<Sample> bad_label;
  bad_label.push_back({nn::Tensor{{1, 2, 2}}, 5});
  EXPECT_THROW((InMemoryDataset{"x", std::move(bad_label), 2}),
               std::invalid_argument);

  std::vector<Sample> bad_rank;
  bad_rank.push_back({nn::Tensor{{4}}, 0});
  EXPECT_THROW((InMemoryDataset{"x", std::move(bad_rank), 2}),
               std::invalid_argument);
}

TEST(Synthetic, DeterministicFromSeed) {
  const auto a = make_synthetic(tiny_spec());
  const auto b = make_synthetic(tiny_spec());
  ASSERT_EQ(a.train->size(), b.train->size());
  for (std::size_t i = 0; i < a.train->size(); ++i) {
    EXPECT_EQ(a.train->sample(i).label, b.train->sample(i).label);
    for (std::size_t k = 0; k < a.train->sample(i).image.numel(); ++k)
      EXPECT_EQ(a.train->sample(i).image[k], b.train->sample(i).image[k]);
  }
}

TEST(Synthetic, DifferentSeedsDiffer) {
  auto s1 = tiny_spec();
  auto s2 = tiny_spec();
  s2.seed = 99;
  const auto a = make_synthetic(s1);
  const auto b = make_synthetic(s2);
  bool any_diff = false;
  for (std::size_t k = 0; k < a.train->sample(0).image.numel(); ++k)
    if (a.train->sample(0).image[k] != b.train->sample(0).image[k])
      any_diff = true;
  EXPECT_TRUE(any_diff);
}

TEST(Synthetic, SplitsHaveRequestedSizes) {
  const auto ds = make_synthetic(tiny_spec());
  EXPECT_EQ(ds.train->size(), 40u);
  EXPECT_EQ(ds.test->size(), 20u);
  EXPECT_EQ(ds.train->num_classes(), 4u);
  EXPECT_EQ(ds.train->input_shape(), (nn::Shape{1, 8, 8}));
}

TEST(Synthetic, ClassesAreBalanced) {
  const auto ds = make_synthetic(tiny_spec());
  std::vector<int> counts(4, 0);
  for (std::size_t i = 0; i < ds.train->size(); ++i)
    ++counts[ds.train->sample(i).label];
  for (int c : counts) EXPECT_EQ(c, 10);
}

TEST(Synthetic, TrainAndTestAreDisjointStreams) {
  const auto ds = make_synthetic(tiny_spec());
  // No test image should be bit-identical to a train image.
  for (std::size_t t = 0; t < ds.test->size(); ++t) {
    for (std::size_t r = 0; r < ds.train->size(); ++r) {
      bool identical = true;
      for (std::size_t k = 0; k < ds.test->sample(t).image.numel(); ++k) {
        if (ds.test->sample(t).image[k] != ds.train->sample(r).image[k]) {
          identical = false;
          break;
        }
      }
      EXPECT_FALSE(identical) << "test " << t << " == train " << r;
    }
  }
}

TEST(Synthetic, RejectsInvalidSpecs) {
  auto s = tiny_spec();
  s.num_classes = 0;
  EXPECT_THROW(make_synthetic(s), std::invalid_argument);
  s = tiny_spec();
  s.noise_min = 0.9;
  s.noise_max = 0.1;
  EXPECT_THROW(make_synthetic(s), std::invalid_argument);
  s = tiny_spec();
  s.compositional = true;
  s.orientations = 2;
  s.num_classes = 10;  // > orientations^2
  EXPECT_THROW(make_synthetic(s), std::invalid_argument);
}

TEST(Synthetic, PresetsProduceExpectedShapes) {
  const auto mnist = make_synthetic(synth_mnist_spec(20, 10));
  EXPECT_EQ(mnist.train->input_shape()[0], 1u);
  EXPECT_EQ(mnist.train->num_classes(), 10u);

  const auto c10 = make_synthetic(synth_cifar10_spec(20, 10));
  EXPECT_EQ(c10.train->input_shape()[0], 3u);
  EXPECT_EQ(c10.train->num_classes(), 10u);

  const auto c100 = make_synthetic(synth_cifar100_spec(200, 100));
  EXPECT_EQ(c100.train->num_classes(), 20u);  // CIFAR-100 superclasses
}

TEST(Batch, MakeBatchStacksImages) {
  const auto ds = make_synthetic(tiny_spec());
  const std::size_t idx[] = {0, 3, 5};
  const Batch b = make_batch(*ds.train, idx);
  EXPECT_EQ(b.size(), 3u);
  EXPECT_EQ(b.images.shape(), (nn::Shape{3, 1, 8, 8}));
  EXPECT_EQ(b.labels[1], ds.train->sample(3).label);
  // Row 2 of the batch equals sample 5's image.
  for (std::size_t k = 0; k < 64; ++k)
    EXPECT_EQ(b.images[2 * 64 + k], ds.train->sample(5).image[k]);
}

TEST(BatchIterator, CoversEverySampleOncePerEpoch) {
  const auto ds = make_synthetic(tiny_spec());
  util::Rng rng{1};
  BatchIterator it{*ds.train, 7, rng};
  EXPECT_EQ(it.batches_per_epoch(), (40u + 6) / 7);
  std::size_t seen = 0;
  for (auto b = it.next(); b.size() != 0; b = it.next()) seen += b.size();
  EXPECT_EQ(seen, 40u);
  // Exhausted epoch returns empty batches until reset.
  EXPECT_EQ(it.next().size(), 0u);
  it.reset();
  EXPECT_GT(it.next().size(), 0u);
}

TEST(BatchIterator, UnshuffledPreservesOrder) {
  const auto ds = make_synthetic(tiny_spec());
  util::Rng rng{1};
  BatchIterator it{*ds.train, 4, rng, /*shuffle=*/false};
  const Batch b = it.next();
  for (std::size_t i = 0; i < b.size(); ++i)
    EXPECT_EQ(b.labels[i], ds.train->sample(i).label);
}

TEST(BatchIterator, RejectsZeroBatchSize) {
  const auto ds = make_synthetic(tiny_spec());
  util::Rng rng{1};
  EXPECT_THROW((BatchIterator{*ds.train, 0, rng}), std::invalid_argument);
}

}  // namespace
}  // namespace einet::data
