// Property-style sweeps over the elastic runtime: invariants that must hold
// for ANY profile, plan, deadline and search configuration.
#include <gtest/gtest.h>

#include "runtime/elastic_engine.hpp"

namespace einet::runtime {
namespace {

struct SweepCase {
  std::string label;
  std::size_t exits;
  std::uint64_t seed;
  core::SearchMethod method;
};

class RuntimeSweep : public ::testing::TestWithParam<SweepCase> {
 protected:
  void SetUp() override {
    const auto& param = GetParam();
    util::Rng rng{param.seed};
    et_.model_name = "sweep";
    et_.platform_name = "sim";
    for (std::size_t i = 0; i < param.exits; ++i) {
      et_.conv_ms.push_back(rng.uniform(0.1, 1.5));
      et_.branch_ms.push_back(rng.uniform(0.05, 0.9));
    }
    for (int s = 0; s < 40; ++s) {
      profiling::CSRecord r;
      r.label = 0;
      for (std::size_t e = 0; e < param.exits; ++e) {
        const float c = rng.uniform_f(0.05f, 0.99f);
        r.confidence.push_back(c);
        r.correct.push_back(static_cast<std::uint8_t>(rng.bernoulli(c)));
      }
      records_.push_back(std::move(r));
    }
    fallback_.assign(param.exits, 0.5f);
  }

  profiling::ETProfile et_;
  std::vector<profiling::CSRecord> records_;
  std::vector<float> fallback_;
};

TEST_P(RuntimeSweep, OutcomeInvariantsHoldForRandomDeadlines) {
  ElasticConfig cfg;
  cfg.search.method = GetParam().method;
  cfg.search.random_plans = 64;
  ElasticEngine engine{et_, nullptr, cfg, fallback_};
  core::UniformExitDistribution dist{et_.total_ms()};
  util::Rng rng{GetParam().seed ^ 0xABCDEF};

  for (const auto& rec : records_) {
    const double deadline = dist.sample(rng);
    const auto out = engine.run(rec, deadline, dist);

    // A result can only exist if something executed, and it must have been
    // produced before the deadline.
    EXPECT_EQ(out.has_result, out.branches_executed > 0);
    if (out.has_result) {
      EXPECT_LE(out.result_time_ms, deadline + 1e-9);
      EXPECT_LT(out.exit_index, et_.num_blocks());
      // The kept result's correctness must match the record.
      EXPECT_EQ(out.correct, rec.correct[out.exit_index] != 0);
    }
    // Execution can never outrun the full-execution horizon.
    EXPECT_LE(out.branches_executed, et_.num_blocks());
    // A completed plan's deepest output is the kept result.
    if (out.completed && out.has_result)
      EXPECT_GE(deadline, out.result_time_ms);
  }
}

TEST_P(RuntimeSweep, ZeroDeadlineNeverProducesResults) {
  ElasticConfig cfg;
  cfg.search.method = GetParam().method;
  cfg.search.random_plans = 64;
  ElasticEngine engine{et_, nullptr, cfg, fallback_};
  core::UniformExitDistribution dist{et_.total_ms()};
  const auto out = engine.run(records_.front(), 0.0, dist);
  EXPECT_FALSE(out.has_result);
  EXPECT_EQ(out.branches_executed, 0u);
}

TEST_P(RuntimeSweep, InfiniteDeadlineAlwaysCompletes) {
  ElasticConfig cfg;
  cfg.search.method = GetParam().method;
  cfg.search.random_plans = 64;
  ElasticEngine engine{et_, nullptr, cfg, fallback_};
  core::UniformExitDistribution dist{et_.total_ms()};
  for (const auto& rec : records_) {
    const auto out = engine.run(rec, 1e12, dist);
    EXPECT_TRUE(out.completed);
    // The search always keeps at least the deepest exit reachable, so a
    // completed run holds a result unless the plan executed nothing at all;
    // EINet plans always execute >= 1 branch when time is unbounded.
    EXPECT_TRUE(out.has_result);
  }
}

TEST_P(RuntimeSweep, StaticPlanOutcomeIsDeadlineMonotone) {
  // Growing the deadline can only improve a static plan's kept exit.
  ElasticEngine engine{et_, nullptr, ElasticConfig{}, fallback_};
  util::Rng rng{GetParam().seed + 1};
  core::ExitPlan plan{et_.num_blocks()};
  for (std::size_t i = 0; i < plan.size(); ++i) plan.set(i, rng.bernoulli(0.6));
  if (plan.num_outputs() == 0) plan.set(plan.size() - 1, true);

  const auto& rec = records_.front();
  long prev_exit = -1;
  for (double d = 0.0; d <= et_.total_ms() + 0.5; d += et_.total_ms() / 37.0) {
    const auto out = engine.run_static(rec, plan, d);
    const long cur = out.has_result ? static_cast<long>(out.exit_index) : -1;
    EXPECT_GE(cur, prev_exit) << "deadline " << d;
    prev_exit = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RuntimeSweep,
    ::testing::Values(
        SweepCase{"hybrid_n6", 6, 1, core::SearchMethod::kHybrid},
        SweepCase{"hybrid_n21", 21, 2, core::SearchMethod::kHybrid},
        SweepCase{"greedy_n13", 13, 3, core::SearchMethod::kGreedy},
        SweepCase{"random_n9", 9, 4, core::SearchMethod::kRandom},
        SweepCase{"none_n7", 7, 5, core::SearchMethod::kNone}),
    [](const auto& info) { return info.param.label; });

}  // namespace
}  // namespace einet::runtime
