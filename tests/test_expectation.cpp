#include <gtest/gtest.h>

#include "core/expectation.hpp"

namespace einet::core {
namespace {

// A simple 3-block profile: each conv part takes 1 ms, each branch 0.5 ms.
struct Fixture {
  std::vector<double> conv{1.0, 1.0, 1.0};
  std::vector<double> branch{0.5, 0.5, 0.5};
  std::vector<float> conf{0.6f, 0.8f, 0.9f};
};

TEST(Expectation, AllSkipIsZero) {
  Fixture f;
  UniformExitDistribution dist{4.5};
  EXPECT_DOUBLE_EQ(
      accuracy_expectation(ExitPlan{3}, f.conv, f.branch, f.conf, dist), 0.0);
}

TEST(Expectation, SingleOutputHandComputed) {
  Fixture f;
  // Full-execution horizon: 3*1 + 3*0.5 = 4.5 ms.
  UniformExitDistribution dist{4.5};
  // Plan 100: output at t = 1 + 0.5 = 1.5, confidence 0.6 persists after.
  ExitPlan p{3};
  p.set(0, true);
  const double e = accuracy_expectation(p, f.conv, f.branch, f.conf, dist);
  EXPECT_NEAR(e, 0.6 * (1.0 - 1.5 / 4.5), 1e-6);
}

TEST(Expectation, TwoOutputsHandComputed) {
  Fixture f;
  UniformExitDistribution dist{4.5};
  // Plan 101: outputs at t=1.5 (conf .6) and t=1.5+1+0.5=3.0... wait:
  // block1 conv (skip branch) -> t=2.5; block2 conv+branch -> t=4.0.
  ExitPlan p{3};
  p.set(0, true);
  p.set(2, true);
  const double e = accuracy_expectation(p, f.conv, f.branch, f.conf, dist);
  const double expected =
      0.6 * ((4.0 - 1.5) / 4.5) + 0.9 * (1.0 - 4.0 / 4.5);
  EXPECT_NEAR(e, expected, 1e-6);
}

TEST(Expectation, AllOutputsHandComputed) {
  Fixture f;
  UniformExitDistribution dist{4.5};
  ExitPlan p{3, true};
  // Outputs at 1.5, 3.0, 4.5.
  const double expected = 0.6 * (3.0 - 1.5) / 4.5 +
                          0.8 * (4.5 - 3.0) / 4.5 + 0.9 * (1.0 - 4.5 / 4.5);
  EXPECT_NEAR(accuracy_expectation(p, f.conv, f.branch, f.conf, dist),
              expected, 1e-6);
}

TEST(Expectation, ResultPersistsAfterEarlyFinish) {
  // A plan that ends well before the horizon keeps its deepest result for
  // the remaining probability mass.
  Fixture f;
  UniformExitDistribution dist{100.0};
  ExitPlan p{3};
  p.set(0, true);
  const double e = accuracy_expectation(p, f.conv, f.branch, f.conf, dist);
  EXPECT_NEAR(e, 0.6 * (1.0 - 1.5 / 100.0), 1e-6);
}

TEST(Expectation, HigherConfidenceNeverLowersExpectation) {
  Fixture f;
  UniformExitDistribution dist{4.5};
  ExitPlan p{3, true};
  const double base = accuracy_expectation(p, f.conv, f.branch, f.conf, dist);
  std::vector<float> boosted = f.conf;
  boosted[1] = 0.95f;
  EXPECT_GT(accuracy_expectation(p, f.conv, f.branch, boosted, dist), base);
}

TEST(Expectation, ValidatesSizes) {
  Fixture f;
  UniformExitDistribution dist{4.5};
  EXPECT_THROW(
      accuracy_expectation(ExitPlan{2}, f.conv, f.branch, f.conf, dist),
      std::invalid_argument);
  EXPECT_THROW(accuracy_expectation(ExitPlan{}, {}, {}, {}, dist),
               std::invalid_argument);
}

TEST(Expectation, BoundedByMaxConfidence) {
  Fixture f;
  UniformExitDistribution dist{4.5};
  ExitPlan p{3, true};
  const double e = accuracy_expectation(p, f.conv, f.branch, f.conf, dist);
  EXPECT_LE(e, 0.9);
  EXPECT_GE(e, 0.0);
}

// ---- Differential test: fast implementation == reference oracle -----------

struct DiffCase {
  std::string label;
  std::size_t n;
  std::string dist_kind;
  std::uint64_t seed;
};

class ExpectationDifferential : public ::testing::TestWithParam<DiffCase> {};

TEST_P(ExpectationDifferential, FastMatchesReference) {
  const auto& param = GetParam();
  util::Rng rng{param.seed};
  std::vector<double> conv(param.n), branch(param.n);
  std::vector<float> conf(param.n);
  double total = 0.0;
  for (std::size_t i = 0; i < param.n; ++i) {
    conv[i] = rng.uniform(0.05, 2.0);
    branch[i] = rng.uniform(0.02, 1.0);
    conf[i] = rng.uniform_f(0.0f, 1.0f);
    total += conv[i] + branch[i];
  }
  const auto dist = make_distribution(param.dist_kind, total);

  for (int trial = 0; trial < 50; ++trial) {
    ExitPlan plan{param.n};
    for (std::size_t i = 0; i < param.n; ++i) plan.set(i, rng.bernoulli(0.5));
    const double fast =
        accuracy_expectation(plan, conv, branch, conf, *dist);
    const double ref = accuracy_expectation_reference(plan, conv, branch,
                                                      conf, *dist, 512);
    EXPECT_NEAR(fast, ref, 1e-6) << "plan " << plan.str();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExpectationDifferential,
    ::testing::Values(DiffCase{"n3_uniform", 3, "uniform", 1},
                      DiffCase{"n8_uniform", 8, "uniform", 2},
                      DiffCase{"n8_gauss05", 8, "gauss0.5", 3},
                      DiffCase{"n21_gauss10", 21, "gauss1.0", 4},
                      DiffCase{"n40_uniform", 40, "uniform", 5}),
    [](const auto& info) { return info.param.label; });

}  // namespace
}  // namespace einet::core
