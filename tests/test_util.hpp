// Shared test helpers: numerical gradient checking for layers and small
// fixture builders used across suites.
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/layer.hpp"

namespace einet::testing {

/// Scalar objective used by gradient checks: L = sum(forward(x) .* weights).
inline float weighted_sum(const nn::Tensor& y, const nn::Tensor& weights) {
  EXPECT_EQ(y.shape(), weights.shape());
  float acc = 0.0f;
  for (std::size_t i = 0; i < y.numel(); ++i) acc += y[i] * weights[i];
  return acc;
}

/// Relative error robust to near-zero magnitudes.
inline double rel_err(double a, double b) {
  const double scale = std::max({1e-3, std::abs(a), std::abs(b)});
  return std::abs(a - b) / scale;
}

/// Check dL/dx of `layer` against central finite differences.
/// L = sum(layer(x) .* w) with w fixed random. Perturbed evaluations run in
/// train mode so batch-statistics layers (BatchNorm) match the analytic
/// path; stochastic layers (dropout with p > 0) must not be checked.
inline void check_input_gradient(nn::Layer& layer, nn::Tensor x,
                                 util::Rng& rng, double tol = 0.05,
                                 float eps = 1e-2f) {
  const nn::Shape out_shape = layer.out_shape(x.shape());
  nn::Tensor w = nn::Tensor::uniform(out_shape, -1.0f, 1.0f, rng);

  nn::Tensor y = layer.forward(x, /*train=*/true);
  nn::Tensor analytic = layer.backward(w);

  std::size_t checked = 0;
  // Check a bounded number of coordinates to keep tests fast.
  const std::size_t stride = std::max<std::size_t>(1, x.numel() / 64);
  for (std::size_t i = 0; i < x.numel(); i += stride) {
    const float orig = x[i];
    x[i] = orig + eps;
    const float lp = weighted_sum(layer.forward(x, /*train=*/true), w);
    x[i] = orig - eps;
    const float lm = weighted_sum(layer.forward(x, /*train=*/true), w);
    x[i] = orig;
    const double numeric = static_cast<double>(lp - lm) / (2.0 * eps);
    EXPECT_LT(rel_err(analytic[i], numeric), tol)
        << "input grad mismatch at " << i << ": analytic " << analytic[i]
        << " numeric " << numeric << " (" << layer.name() << ")";
    ++checked;
  }
  EXPECT_GT(checked, 0u);
}

/// Check dL/dparam for every parameter of `layer` against central
/// finite differences.
inline void check_param_gradients(nn::Layer& layer, const nn::Tensor& x,
                                  util::Rng& rng, double tol = 0.05,
                                  float eps = 1e-2f) {
  const nn::Shape out_shape = layer.out_shape(x.shape());
  nn::Tensor w = nn::Tensor::uniform(out_shape, -1.0f, 1.0f, rng);

  for (auto* p : layer.params()) p->zero_grad();
  (void)layer.forward(x, /*train=*/true);
  (void)layer.backward(w);

  for (auto* p : layer.params()) {
    const std::size_t stride = std::max<std::size_t>(1, p->value.numel() / 32);
    for (std::size_t i = 0; i < p->value.numel(); i += stride) {
      const float orig = p->value[i];
      p->value[i] = orig + eps;
      const float lp = weighted_sum(layer.forward(x, /*train=*/true), w);
      p->value[i] = orig - eps;
      const float lm = weighted_sum(layer.forward(x, /*train=*/true), w);
      p->value[i] = orig;
      const double numeric = static_cast<double>(lp - lm) / (2.0 * eps);
      EXPECT_LT(rel_err(p->grad[i], numeric), tol)
          << "param '" << p->name << "' grad mismatch at " << i
          << ": analytic " << p->grad[i] << " numeric " << numeric << " ("
          << layer.name() << ")";
    }
  }
}

}  // namespace einet::testing
