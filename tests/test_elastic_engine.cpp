#include <gtest/gtest.h>

#include "runtime/elastic_engine.hpp"

namespace einet::runtime {
namespace {

/// 3-block profile: conv 1 ms each, branch 0.5 ms each; horizon 4.5 ms.
profiling::ETProfile toy_et() {
  profiling::ETProfile et;
  et.model_name = "toy";
  et.platform_name = "sim";
  et.conv_ms = {1.0, 1.0, 1.0};
  et.branch_ms = {0.5, 0.5, 0.5};
  return et;
}

profiling::CSRecord toy_record() {
  return profiling::CSRecord{{0.5f, 0.7f, 0.9f}, {0, 1, 1}, 1};
}

ElasticEngine fallback_engine(const ElasticConfig& config = {}) {
  return ElasticEngine{toy_et(), nullptr, config,
                       std::vector<float>{0.5f, 0.7f, 0.9f}};
}

TEST(ElasticEngine, ConstructionValidates) {
  EXPECT_THROW((ElasticEngine{toy_et(), nullptr, ElasticConfig{}, {}}),
               std::invalid_argument);
  profiling::ETProfile bad = toy_et();
  bad.branch_ms.pop_back();
  EXPECT_THROW(
      (ElasticEngine{bad, nullptr, ElasticConfig{}, {0.1f, 0.2f, 0.3f}}),
      std::invalid_argument);
}

TEST(ElasticEngine, StaticPlanBeforeFirstOutputHasNoResult) {
  auto engine = fallback_engine();
  // Plan 111: first output completes at 1.5 ms.
  const auto out =
      engine.run_static(toy_record(), core::ExitPlan{3, true}, 1.2);
  EXPECT_FALSE(out.has_result);
  EXPECT_FALSE(out.completed);
  EXPECT_EQ(out.branches_executed, 0u);
}

TEST(ElasticEngine, StaticPlanKeepsLastCompletedOutput) {
  auto engine = fallback_engine();
  // Plan 111: outputs at 1.5, 3.0, 4.5. Deadline 3.2 -> exit 1 result.
  const auto out =
      engine.run_static(toy_record(), core::ExitPlan{3, true}, 3.2);
  EXPECT_TRUE(out.has_result);
  EXPECT_EQ(out.exit_index, 1u);
  EXPECT_TRUE(out.correct);
  EXPECT_DOUBLE_EQ(out.result_time_ms, 3.0);
  EXPECT_FALSE(out.completed);
  EXPECT_EQ(out.branches_executed, 2u);
}

TEST(ElasticEngine, StaticPlanCompletesBeforeGenerousDeadline) {
  auto engine = fallback_engine();
  const auto out =
      engine.run_static(toy_record(), core::ExitPlan{3, true}, 100.0);
  EXPECT_TRUE(out.completed);
  EXPECT_EQ(out.exit_index, 2u);
  EXPECT_EQ(out.branches_executed, 3u);
}

TEST(ElasticEngine, SkippedBranchesSaveTime) {
  auto engine = fallback_engine();
  // Plan 001: only exit 2 outputs, at 3 convs + 1 branch = 3.5 ms.
  core::ExitPlan p{3};
  p.set(2, true);
  const auto out = engine.run_static(toy_record(), p, 3.6);
  EXPECT_TRUE(out.has_result);
  EXPECT_EQ(out.exit_index, 2u);
  EXPECT_DOUBLE_EQ(out.result_time_ms, 3.5);
}

TEST(ElasticEngine, DeadlineExactlyAtOutputCompletionCounts) {
  auto engine = fallback_engine();
  const auto out =
      engine.run_static(toy_record(), core::ExitPlan{3, true}, 1.5);
  EXPECT_TRUE(out.has_result);
  EXPECT_EQ(out.exit_index, 0u);
}

TEST(ElasticEngine, ThresholdStopsAtConfidentExit) {
  auto engine = fallback_engine();
  // Threshold 0.65: exit 1 (conf 0.7) triggers completion at 3.0 ms.
  const auto out = engine.run_threshold(toy_record(), 0.65, 100.0);
  EXPECT_TRUE(out.completed);
  EXPECT_EQ(out.exit_index, 1u);
  EXPECT_EQ(out.branches_executed, 2u);
}

TEST(ElasticEngine, ThresholdRespectsDeadline) {
  auto engine = fallback_engine();
  const auto out = engine.run_threshold(toy_record(), 0.99, 3.2);
  EXPECT_TRUE(out.has_result);
  EXPECT_EQ(out.exit_index, 1u);  // killed before exit 2's branch finished
  EXPECT_FALSE(out.completed);
}

TEST(ElasticEngine, SingleExitAllOrNothing) {
  const auto miss = ElasticEngine::run_single_exit(4.0, true, 3.9);
  EXPECT_FALSE(miss.has_result);
  const auto hit = ElasticEngine::run_single_exit(4.0, true, 4.0);
  EXPECT_TRUE(hit.has_result);
  EXPECT_TRUE(hit.correct);
  EXPECT_TRUE(hit.completed);
}

TEST(ElasticEngine, EinetRunProducesResultUnderGenerousDeadline) {
  auto engine = fallback_engine();
  core::UniformExitDistribution dist{4.5};
  const auto out = engine.run(toy_record(), 100.0, dist);
  EXPECT_TRUE(out.completed);
  EXPECT_TRUE(out.has_result);
  EXPECT_GE(out.searches_run, 1u);  // at least the initial plan search
}

TEST(ElasticEngine, EinetRunRespectsDeadline) {
  auto engine = fallback_engine();
  core::UniformExitDistribution dist{4.5};
  const auto out = engine.run(toy_record(), 0.9, dist);
  EXPECT_FALSE(out.has_result);  // first conv alone takes 1 ms
  EXPECT_FALSE(out.completed);
}

TEST(ElasticEngine, OracleModeNeedsNoFallback) {
  ElasticConfig cfg;
  cfg.oracle_predictor = true;
  ElasticEngine engine{toy_et(), nullptr, cfg, {}};
  core::UniformExitDistribution dist{4.5};
  const auto out = engine.run(toy_record(), 4.5, dist);
  EXPECT_TRUE(out.has_result);
}

TEST(ElasticEngine, ReplanningCanOnlyTouchFutureExits) {
  // With replanning on, every produced output triggers a search whose frozen
  // prefix matches history; observable effect: searches_run == outputs + 1
  // (unless the last output is the final exit).
  auto engine = fallback_engine();
  core::UniformExitDistribution dist{4.5};
  const auto out = engine.run(toy_record(), 100.0, dist);
  std::size_t expected = 1;  // initial search
  expected += out.branches_executed;
  if (out.exit_index == 2) expected -= 1;  // no replan after the last exit
  EXPECT_EQ(out.searches_run, expected);
}

TEST(ElasticEngine, NoReplanKeepsInitialPlan) {
  ElasticConfig cfg;
  cfg.replan_after_each_output = false;
  auto engine = fallback_engine(cfg);
  core::UniformExitDistribution dist{4.5};
  const auto out = engine.run(toy_record(), 100.0, dist);
  EXPECT_EQ(out.searches_run, 1u);
}

TEST(ElasticEngine, RunValidatesRecordSize) {
  auto engine = fallback_engine();
  core::UniformExitDistribution dist{4.5};
  profiling::CSRecord bad{{0.5f}, {1}, 0};
  EXPECT_THROW(engine.run(bad, 1.0, dist), std::invalid_argument);
  EXPECT_THROW(engine.run_static(bad, core::ExitPlan{3, true}, 1.0),
               std::invalid_argument);
  EXPECT_THROW(engine.run_threshold(bad, 0.5, 1.0), std::invalid_argument);
}

TEST(ElasticEngine, SearchMethodNoneExecutesEverything) {
  ElasticConfig cfg;
  cfg.search.method = core::SearchMethod::kNone;
  auto engine = fallback_engine(cfg);
  core::UniformExitDistribution dist{4.5};
  const auto out = engine.run(toy_record(), 100.0, dist);
  EXPECT_EQ(out.branches_executed, 3u);
}

}  // namespace
}  // namespace einet::runtime
