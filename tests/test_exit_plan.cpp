#include <gtest/gtest.h>

#include "core/exit_plan.hpp"

namespace einet::core {
namespace {

TEST(ExitPlan, ConstructionAndBits) {
  ExitPlan p{5};
  EXPECT_EQ(p.size(), 5u);
  EXPECT_EQ(p.num_outputs(), 0u);
  p.set(2, true);
  EXPECT_TRUE(p.executes(2));
  EXPECT_EQ(p.num_outputs(), 1u);
  EXPECT_EQ(p.deepest_output(), 2u);
  EXPECT_EQ(p.str(), "00100");
}

TEST(ExitPlan, ExecuteAllConstructor) {
  ExitPlan p{4, true};
  EXPECT_EQ(p.num_outputs(), 4u);
  EXPECT_EQ(p.deepest_output(), 3u);
}

TEST(ExitPlan, FromBitsValidates) {
  EXPECT_EQ(ExitPlan::from_bits({1, 0, 1}).str(), "101");
  EXPECT_THROW(ExitPlan::from_bits({0, 2}), std::invalid_argument);
}

TEST(ExitPlan, DeepestOutputOfEmptyPlanIsSize) {
  ExitPlan p{3};
  EXPECT_EQ(p.deepest_output(), 3u);
}

TEST(ExitPlan, BoundsChecked) {
  ExitPlan p{3};
  EXPECT_THROW(p.executes(3), std::out_of_range);
  EXPECT_THROW(p.set(3, true), std::out_of_range);
}

TEST(ExitPlan, StaticFractionFullExecutesAll) {
  const auto p = ExitPlan::static_fraction(8, 1.0);
  EXPECT_EQ(p.num_outputs(), 8u);
}

TEST(ExitPlan, StaticFractionAlwaysIncludesDeepest) {
  for (std::size_t n : {1u, 3u, 5u, 8u, 14u, 21u, 40u}) {
    for (double f : {0.1, 0.25, 0.5, 0.75, 1.0}) {
      const auto p = ExitPlan::static_fraction(n, f);
      EXPECT_TRUE(p.executes(n - 1)) << "n=" << n << " f=" << f;
    }
  }
}

TEST(ExitPlan, StaticFractionCountRoughlyMatches) {
  const auto p = ExitPlan::static_fraction(40, 0.25);
  EXPECT_EQ(p.num_outputs(), 10u);
  const auto h = ExitPlan::static_fraction(40, 0.5);
  EXPECT_EQ(h.num_outputs(), 20u);
}

TEST(ExitPlan, StaticFractionRejectsBadInput) {
  EXPECT_THROW(ExitPlan::static_fraction(0, 0.5), std::invalid_argument);
  EXPECT_THROW(ExitPlan::static_fraction(4, 0.0), std::invalid_argument);
  EXPECT_THROW(ExitPlan::static_fraction(4, 1.5), std::invalid_argument);
}

TEST(ExitPlan, UniformSkipKeepsDeepestAndCount) {
  for (std::size_t n : {2u, 5u, 11u, 40u}) {
    for (std::size_t skip = 0; skip < n; ++skip) {
      const auto p = ExitPlan::uniform_skip(n, skip);
      EXPECT_TRUE(p.executes(n - 1)) << "n=" << n << " skip=" << skip;
      EXPECT_LE(p.num_outputs(), n - (skip > 0 ? 1 : 0) * 0);
      EXPECT_GE(p.num_outputs(), n - skip);  // duplicates can only reduce skips
    }
  }
}

TEST(ExitPlan, UniformSkipZeroIsAllOnes) {
  EXPECT_EQ(ExitPlan::uniform_skip(6, 0), (ExitPlan{6, true}));
}

TEST(ExitPlan, UniformSkipRejectsSkippingEverything) {
  EXPECT_THROW(ExitPlan::uniform_skip(4, 4), std::invalid_argument);
  EXPECT_THROW(ExitPlan::uniform_skip(0, 0), std::invalid_argument);
}

TEST(ExitPlan, EqualityComparesBits) {
  ExitPlan a{3}, b{3};
  EXPECT_EQ(a, b);
  a.set(1, true);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace einet::core
