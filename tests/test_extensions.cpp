// Tests for the extension layers (LeakyReLU / Sigmoid / Tanh / DenseUnit),
// the dense-connectivity MSDNet variant, and the piecewise-linear
// arbitrary-curve exit distribution.
#include <gtest/gtest.h>

#include <cmath>

#include "core/expectation.hpp"
#include "core/time_distribution.hpp"
#include "models/backbones.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/elementwise.hpp"
#include "nn/softmax.hpp"
#include "predictor/cs_predictor.hpp"
#include "test_util.hpp"

namespace einet {
namespace {

using nn::Shape;
using nn::Tensor;

TEST(LeakyReLU, ForwardScalesNegatives) {
  nn::LeakyReLU l{0.1f};
  Tensor x{{3}, {-2.0f, 0.0f, 4.0f}};
  const Tensor y = l.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], -0.2f);
  EXPECT_FLOAT_EQ(y[1], 0.0f);
  EXPECT_FLOAT_EQ(y[2], 4.0f);
}

TEST(LeakyReLU, GradientMatchesNumeric) {
  util::Rng rng{1};
  nn::LeakyReLU l{0.2f};
  Tensor x = Tensor::uniform({2, 8}, -1, 1, rng);
  for (std::size_t i = 0; i < x.numel(); ++i)
    x[i] += (x[i] >= 0.0f ? 0.05f : -0.05f);
  testing::check_input_gradient(l, x, rng);
}

TEST(LeakyReLU, RejectsBadAlpha) {
  EXPECT_THROW(nn::LeakyReLU{-0.5f}, std::invalid_argument);
  EXPECT_THROW(nn::LeakyReLU{1.0f}, std::invalid_argument);
}

TEST(Sigmoid, ForwardRangeAndMidpoint) {
  nn::Sigmoid s;
  Tensor x{{3}, {-100.0f, 0.0f, 100.0f}};
  const Tensor y = s.forward(x, false);
  EXPECT_NEAR(y[0], 0.0f, 1e-6);
  EXPECT_FLOAT_EQ(y[1], 0.5f);
  EXPECT_NEAR(y[2], 1.0f, 1e-6);
}

TEST(Sigmoid, GradientMatchesNumeric) {
  util::Rng rng{2};
  nn::Sigmoid s;
  testing::check_input_gradient(s, Tensor::uniform({2, 10}, -2, 2, rng), rng);
}

TEST(Tanh, ForwardOddSymmetry) {
  nn::Tanh t;
  Tensor x{{2}, {1.3f, -1.3f}};
  const Tensor y = t.forward(x, false);
  EXPECT_NEAR(y[0], -y[1], 1e-6);
  EXPECT_NEAR(y[0], std::tanh(1.3f), 1e-6);
}

TEST(Tanh, GradientMatchesNumeric) {
  util::Rng rng{3};
  nn::Tanh t;
  testing::check_input_gradient(t, Tensor::uniform({2, 10}, -2, 2, rng), rng);
}

// ---- DenseUnit -------------------------------------------------------------

nn::LayerPtr small_conv(std::size_t in_c, std::size_t out_c, util::Rng& rng) {
  return std::make_unique<nn::Conv2d>(
      nn::Conv2dSpec{.in_channels = in_c,
                     .out_channels = out_c,
                     .kernel = 3,
                     .stride = 1,
                     .padding = 1},
      rng);
}

TEST(DenseUnit, ConcatenatesChannels) {
  util::Rng rng{4};
  nn::DenseUnit d{small_conv(2, 3, rng)};
  EXPECT_EQ(d.out_shape({1, 2, 4, 4}), (Shape{1, 5, 4, 4}));
  const Tensor x = Tensor::uniform({1, 2, 4, 4}, -1, 1, rng);
  const Tensor y = d.forward(x, false);
  // The first two channels are the input, verbatim.
  for (std::size_t i = 0; i < 2 * 16; ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(DenseUnit, RejectsSpatialMismatch) {
  util::Rng rng{5};
  nn::DenseUnit d{std::make_unique<nn::Conv2d>(
      nn::Conv2dSpec{.in_channels = 2,
                     .out_channels = 2,
                     .kernel = 3,
                     .stride = 2,
                     .padding = 1},
      rng)};
  EXPECT_THROW(d.out_shape({1, 2, 8, 8}), std::invalid_argument);
}

TEST(DenseUnit, GradientsMatchNumeric) {
  util::Rng rng{6};
  nn::DenseUnit d{small_conv(2, 2, rng)};
  const Tensor x = Tensor::uniform({2, 2, 4, 4}, -1, 1, rng);
  testing::check_input_gradient(d, x, rng);
  testing::check_param_gradients(d, x, rng);
}

TEST(DenseUnit, StacksLikeDenseNet) {
  util::Rng rng{7};
  nn::Sequential seq;
  seq.emplace<nn::DenseUnit>(small_conv(2, 3, rng));  // 2 -> 5
  seq.emplace<nn::DenseUnit>(small_conv(5, 3, rng));  // 5 -> 8
  EXPECT_EQ(seq.out_shape({1, 2, 4, 4}), (Shape{1, 8, 4, 4}));
  const Tensor x = Tensor::uniform({1, 2, 4, 4}, -1, 1, rng);
  testing::check_input_gradient(seq, x, rng);
}

TEST(MsdnetDense, BuildsRunsAndGrowsChannels) {
  util::Rng rng{8};
  auto net = models::make_msdnet_dense(
      models::MsdnetSpec{.blocks = 6, .step = 1, .base = 2, .channel = 8},
      {3, 16, 16}, 10, rng, /*growth=*/4);
  EXPECT_EQ(net.num_exits(), 6u);
  const auto logits = net.forward_all(Tensor{{1, 3, 16, 16}}, false);
  EXPECT_EQ(logits.size(), 6u);
  // Feature width grows inside a stage (dense concat) and resets at the
  // transition points.
  EXPECT_GT(net.feature_shape(2)[0], net.feature_shape(1)[0]);
}

TEST(MsdnetDense, RejectsZeroGrowth) {
  util::Rng rng{9};
  EXPECT_THROW(models::make_msdnet_dense(
                   models::MsdnetSpec{.blocks = 3, .step = 1, .base = 1,
                                      .channel = 4},
                   {3, 16, 16}, 10, rng, /*growth=*/0),
               std::invalid_argument);
}

TEST(SoftmaxLayer, RowsSumToOne) {
  util::Rng rng{20};
  nn::Softmax sm;
  const Tensor x = Tensor::uniform({3, 5}, -2, 2, rng);
  const Tensor y = sm.forward(x, false);
  for (std::size_t r = 0; r < 3; ++r) {
    float sum = 0.0f;
    for (std::size_t c = 0; c < 5; ++c) sum += y[r * 5 + c];
    EXPECT_NEAR(sum, 1.0f, 1e-5);
  }
}

TEST(SoftmaxLayer, GradientMatchesNumeric) {
  util::Rng rng{21};
  nn::Softmax sm;
  testing::check_input_gradient(sm, Tensor::uniform({2, 6}, -2, 2, rng), rng,
                                /*tol=*/0.08);
}

TEST(SoftmaxLayer, RejectsNon2dInput) {
  nn::Softmax sm;
  EXPECT_THROW(sm.out_shape({2, 3, 4}), std::invalid_argument);
}

TEST(ModelSerialization, MultiExitNetworkRoundTrip) {
  util::Rng rng_a{30}, rng_b{31};
  auto a = models::make_msdnet(
      models::MsdnetSpec{.blocks = 3, .step = 1, .base = 1, .channel = 4},
      {3, 8, 8}, 5, rng_a);
  auto b = models::make_msdnet(
      models::MsdnetSpec{.blocks = 3, .step = 1, .base = 1, .channel = 4},
      {3, 8, 8}, 5, rng_b);
  const std::string path = ::testing::TempDir() + "/einet_net.bin";
  a.save_weights(path);
  b.load_weights(path);
  util::Rng rng_x{32};
  const Tensor x = Tensor::uniform({1, 3, 8, 8}, -1, 1, rng_x);
  const auto la = a.forward_all(x, false);
  const auto lb = b.forward_all(x, false);
  for (std::size_t k = 0; k < la.size(); ++k)
    for (std::size_t i = 0; i < la[k].numel(); ++i)
      EXPECT_FLOAT_EQ(la[k][i], lb[k][i]);
}

TEST(ModelSerialization, PredictorRoundTrip) {
  predictor::CSPredictorConfig cfg;
  cfg.hidden = 16;
  cfg.seed = 1;
  predictor::CSPredictor a{4, cfg};
  cfg.seed = 2;
  predictor::CSPredictor b{4, cfg};
  const std::string path = ::testing::TempDir() + "/einet_pred.bin";
  a.save_weights(path);
  b.load_weights(path);
  const std::vector<float> in{0.3f, 0.0f, 0.0f, 0.0f};
  const auto oa = a.forward_raw(in);
  const auto ob = b.forward_raw(in);
  for (std::size_t i = 0; i < oa.size(); ++i) EXPECT_FLOAT_EQ(oa[i], ob[i]);
}

// ---- PiecewiseLinearExitDistribution ---------------------------------------

TEST(PiecewiseLinear, InterpolatesBetweenKnots) {
  core::PiecewiseLinearExitDistribution d{
      {{0.0, 0.0}, {5.0, 0.2}, {10.0, 1.0}}, 10.0};
  EXPECT_DOUBLE_EQ(d.cdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf(5.0), 0.2);
  EXPECT_DOUBLE_EQ(d.cdf(2.5), 0.1);
  EXPECT_DOUBLE_EQ(d.cdf(7.5), 0.6);
  EXPECT_DOUBLE_EQ(d.cdf(10.0), 1.0);
}

TEST(PiecewiseLinear, NormalisesUnnormalisedKnots) {
  // Cumulative axis in arbitrary units; the constructor rescales.
  core::PiecewiseLinearExitDistribution d{{{0.0, 0.0}, {4.0, 30.0},
                                           {8.0, 60.0}},
                                          8.0};
  EXPECT_DOUBLE_EQ(d.cdf(4.0), 0.5);
}

TEST(PiecewiseLinear, AnchorsMissingEndpoints) {
  // Knots starting after 0 / ending before the horizon are extended.
  core::PiecewiseLinearExitDistribution d{{{2.0, 0.0}, {4.0, 1.0}}, 10.0};
  EXPECT_DOUBLE_EQ(d.cdf(1.0), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf(3.0), 0.5);
  EXPECT_DOUBLE_EQ(d.cdf(6.0), 1.0);  // flat after the last knot
}

TEST(PiecewiseLinear, InverseCdfSamplingMatchesCdf) {
  core::PiecewiseLinearExitDistribution d{
      {{0.0, 0.0}, {3.0, 0.7}, {10.0, 1.0}}, 10.0};
  util::Rng rng{10};
  const int n = 40000;
  int below3 = 0;
  for (int i = 0; i < n; ++i)
    if (d.sample(rng) <= 3.0) ++below3;
  EXPECT_NEAR(static_cast<double>(below3) / n, 0.7, 0.01);
}

TEST(PiecewiseLinear, RejectsBadKnots) {
  using D = core::PiecewiseLinearExitDistribution;
  EXPECT_THROW((D{{{0.0, 0.0}}, 5.0}), std::invalid_argument);
  EXPECT_THROW((D{{{0.0, 0.5}, {2.0, 0.2}}, 5.0}), std::invalid_argument);
  EXPECT_THROW((D{{{3.0, 0.1}, {2.0, 0.2}}, 5.0}), std::invalid_argument);
  EXPECT_THROW((D{{{0.0, 0.3}, {5.0, 0.3}}, 5.0}), std::invalid_argument);
}

TEST(PiecewiseLinear, WorksInsideAccuracyExpectation) {
  // A front-loaded exit curve should value early outputs more than a
  // back-loaded one.
  std::vector<double> conv{1.0, 1.0, 1.0};
  std::vector<double> branch{0.5, 0.5, 0.5};
  std::vector<float> conf{0.6f, 0.8f, 0.9f};
  core::ExitPlan early{3};
  early.set(0, true);
  core::PiecewiseLinearExitDistribution front{
      {{0.0, 0.0}, {1.0, 0.8}, {4.5, 1.0}}, 4.5};
  core::PiecewiseLinearExitDistribution back{
      {{0.0, 0.0}, {3.5, 0.2}, {4.5, 1.0}}, 4.5};
  const double e_front = core::accuracy_expectation(early, conv, branch,
                                                    conf, front);
  const double e_back =
      core::accuracy_expectation(early, conv, branch, conf, back);
  // Under the front-loaded curve most exits land before the first output,
  // so the early plan is worth much less.
  EXPECT_LT(e_front, e_back);
}

}  // namespace
}  // namespace einet
