// Tracer contract tests (DESIGN.md §6): disabled-mode zero-event guarantee,
// span timing/args, TaskScope attribution, ring wraparound accounting,
// concurrent emission + concurrent collection (ThreadSanitizer-clean), and
// the Chrome trace-event JSON shape the exporter guarantees.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "serving/metrics.hpp"

namespace {

using namespace einet;
using obs::Category;
using obs::EventKind;

/// Count events with a given name in a report.
std::size_t count_named(const obs::TraceReport& report, const char* name) {
  std::size_t n = 0;
  for (const auto& e : report.events)
    if (std::string_view{e.name} == name) ++n;
  return n;
}

TEST(Tracer, DisabledModeEmitsNothing) {
  obs::Tracer tracer{{.ring_capacity = 64, .enabled = false}};
  {
    obs::Span span{"noop", Category::kApp, tracer};
    span.task(1).exit(2).plan(3).slack(4.0).value(5.0);
    EXPECT_FALSE(span.active());
  }
  obs::instant("noop", Category::kApp, {}, tracer);
  obs::counter("noop", Category::kApp, 1.0, tracer);
  obs::complete("noop", Category::kApp, 0.0, 1.0, {}, tracer);
  obs::async_complete("noop", Category::kApp, 0.0, 1.0, {}, tracer);
  const auto report = tracer.collect();
  EXPECT_TRUE(report.events.empty());
  EXPECT_EQ(report.total_emitted, 0u);
  EXPECT_EQ(report.total_dropped, 0u);
}

TEST(Tracer, SpanRecordsDurationAndTypedArgs) {
  obs::Tracer tracer{{.ring_capacity = 64, .enabled = true}};
  {
    obs::Span span{"work", Category::kSearch, tracer};
    span.task(42).exit(3).plan(0b1011).slack(7.5).value(99.0);
  }
  const auto report = tracer.collect();
  ASSERT_EQ(report.events.size(), 1u);
  const auto& e = report.events.front();
  EXPECT_STREQ(e.name, "work");
  EXPECT_EQ(e.category, Category::kSearch);
  EXPECT_EQ(e.kind, EventKind::kSpan);
  EXPECT_GE(e.ts_us, 0.0);
  EXPECT_GE(e.dur_us, 0.0);
  EXPECT_EQ(e.args.task_id, 42);
  EXPECT_EQ(e.args.exit_index, 3);
  EXPECT_EQ(e.args.plan_mask, 0b1011);
  EXPECT_DOUBLE_EQ(e.args.slack_ms, 7.5);
  EXPECT_DOUBLE_EQ(e.args.value, 99.0);
}

TEST(Tracer, TaskScopeAttributesNestedEvents) {
  obs::Tracer tracer{{.ring_capacity = 64, .enabled = true}};
  {
    obs::TaskScope scope{1234};
    obs::Span span{"nested", Category::kRuntime, tracer};
    obs::instant("point", Category::kRuntime, {}, tracer);
  }
  // Outside the scope the ambient id is gone again.
  obs::instant("outside", Category::kRuntime, {}, tracer);
  const auto report = tracer.collect();
  ASSERT_EQ(report.events.size(), 3u);
  for (const auto& e : report.events) {
    if (std::string_view{e.name} == "outside")
      EXPECT_EQ(e.args.task_id, obs::kNoArg);
    else
      EXPECT_EQ(e.args.task_id, 1234);
  }
}

TEST(Tracer, ExplicitTaskArgBeatsAmbientScope) {
  obs::Tracer tracer{{.ring_capacity = 64, .enabled = true}};
  obs::TaskScope scope{1};
  {
    obs::Span span{"explicit", Category::kServing, tracer};
    span.task(2);
  }
  const auto report = tracer.collect();
  ASSERT_EQ(report.events.size(), 1u);
  EXPECT_EQ(report.events.front().args.task_id, 2);
}

TEST(ThreadSink, WraparoundKeepsNewestAndCountsDropped) {
  obs::ThreadSink sink{/*tid=*/7, /*capacity=*/8};
  for (int i = 0; i < 20; ++i) {
    obs::Args args;
    args.value = static_cast<double>(i);
    sink.emit("e", Category::kApp, EventKind::kInstant,
              static_cast<double>(i), 0.0, args);
  }
  EXPECT_EQ(sink.emitted(), 20u);
  EXPECT_EQ(sink.dropped(), 12u);
  std::vector<obs::TraceEvent> events;
  sink.drain_into(events);
  ASSERT_EQ(events.size(), 8u);
  // Newest 8 events, oldest first.
  for (std::size_t k = 0; k < events.size(); ++k)
    EXPECT_DOUBLE_EQ(events[k].args.value, static_cast<double>(12 + k));
}

TEST(Tracer, WraparoundAccountingThroughCollect) {
  obs::Tracer tracer{{.ring_capacity = 4, .enabled = true}};
  std::thread emitter{[&] {
    for (int i = 0; i < 10; ++i)
      obs::instant("burst", Category::kApp, {}, tracer);
  }};
  emitter.join();
  const auto report = tracer.collect();
  EXPECT_EQ(report.total_emitted, 10u);
  EXPECT_EQ(report.total_dropped, 6u);
  EXPECT_EQ(report.events.size(), 4u);
}

TEST(Tracer, ConcurrentEmissionAndCollection) {
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 1000;
  obs::Tracer tracer{{.ring_capacity = 4 * kPerThread, .enabled = true}};
  std::atomic<bool> stop{false};

  // A reader hammering collect() while writers emit: must be race-free
  // (relaxed-atomic slots), even though torn events are permitted mid-flight.
  std::thread reader{[&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const auto report = tracer.collect();
      ASSERT_LE(report.events.size(), kThreads * kPerThread);
    }
  }};

  std::vector<std::thread> writers;
  for (std::size_t w = 0; w < kThreads; ++w) {
    writers.emplace_back([&tracer, w] {
      obs::TaskScope scope{static_cast<std::int64_t>(w)};
      for (std::size_t i = 0; i < kPerThread; ++i) {
        obs::Span span{"span", Category::kRuntime, tracer};
        span.exit(static_cast<std::int64_t>(i));
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  // Quiesced: the final snapshot is exact.
  const auto report = tracer.collect();
  EXPECT_EQ(report.total_emitted, kThreads * kPerThread);
  EXPECT_EQ(report.total_dropped, 0u);
  ASSERT_EQ(report.events.size(), kThreads * kPerThread);
  EXPECT_EQ(report.num_threads, kThreads);
  // Per-writer: every span attributed to that writer's task scope.
  for (const auto& e : report.events) {
    EXPECT_EQ(e.kind, EventKind::kSpan);
    EXPECT_GE(e.args.task_id, 0);
    EXPECT_LT(e.args.task_id, static_cast<std::int64_t>(kThreads));
  }
  // Sorted by timestamp as promised.
  for (std::size_t i = 1; i < report.events.size(); ++i)
    EXPECT_LE(report.events[i - 1].ts_us, report.events[i].ts_us);
}

TEST(Tracer, SetRingCapacityRetiresOldSinks) {
  obs::Tracer tracer{{.ring_capacity = 16, .enabled = true}};
  obs::instant("before", Category::kApp, {}, tracer);
  tracer.set_ring_capacity(4);
  obs::instant("after", Category::kApp, {}, tracer);
  const auto report = tracer.collect();
  ASSERT_EQ(report.events.size(), 1u);
  EXPECT_STREQ(report.events.front().name, "after");
}

TEST(PlanMask, PacksBitsLowFirst) {
  EXPECT_EQ(obs::plan_mask_from_bits({1, 0, 1, 1}), 0b1101);
  EXPECT_EQ(obs::plan_mask_from_bits({}), 0);
  // Exits beyond 63 are dropped, not UB.
  std::vector<std::uint8_t> wide(70, 1);
  EXPECT_GT(obs::plan_mask_from_bits(wide), 0);
}

TEST(ChromeExport, EmitsValidObjectFormat) {
  obs::Tracer tracer{{.ring_capacity = 64, .enabled = true}};
  {
    obs::Span outer{"outer \"quoted\"\\", Category::kServing, tracer};
    outer.task(5).plan(0b101).slack(3.25);
    obs::Span inner{"inner", Category::kRuntime, tracer};
    inner.exit(2);
  }
  obs::instant("mark", Category::kPredictor, {}, tracer);
  obs::counter("queue_depth", Category::kServing, 17.0, tracer);
  obs::async_complete("wait", Category::kServing, 1.0, 2.0,
                      obs::Args{.task_id = 5}, tracer);
  const std::string json = obs::chrome_trace_json(tracer.collect());

  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"runtime\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"serving\""), std::string::npos);
  EXPECT_NE(json.find("\"plan_bits\":\"101\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped\":0"), std::string::npos);
  // The quoted/backslashed span name survives escaping.
  EXPECT_NE(json.find("outer \\\"quoted\\\"\\\\"), std::string::npos);

  // Golden structural check: braces/brackets balance outside strings, so the
  // output is parseable JSON (scripts/check_trace.py re-validates in CI).
  int depth = 0;
  bool in_string = false, escaped = false;
  for (const char c : json) {
    if (escaped) {
      escaped = false;
    } else if (c == '\\') {
      escaped = in_string;
    } else if (c == '"') {
      in_string = !in_string;
    } else if (!in_string && (c == '{' || c == '[')) {
      ++depth;
    } else if (!in_string && (c == '}' || c == ']')) {
      ASSERT_GT(depth, 0);
      --depth;
    }
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

TEST(ChromeExport, SummaryAccountsPerCategory) {
  obs::Tracer tracer{{.ring_capacity = 64, .enabled = true}};
  { obs::Span s{"a", Category::kSearch, tracer}; }
  obs::instant("b", Category::kSearch, {}, tracer);
  const auto report = tracer.collect();
  EXPECT_EQ(report.count(Category::kSearch), 2u);
  EXPECT_EQ(report.categories_present(), 1u);
  std::ostringstream out;
  obs::write_trace_summary(report, out);
  EXPECT_NE(out.str().find("\"search\":{\"events\":2"), std::string::npos);
}

TEST(MetricsJson, SnapshotSerializesCountersAndLatency) {
  serving::MetricsRegistry registry;
  registry.on_submitted();
  registry.on_submitted();
  registry.on_admitted();
  registry.on_shed();
  serving::TaskResult r;
  r.outcome.has_result = true;
  r.outcome.correct = true;
  r.queue_wait_ms = 1.0;
  r.end_to_end_ms = 2.5;
  registry.on_completed(r);
  const std::string json = registry.snapshot().to_json();
  EXPECT_NE(json.find("\"submitted\":2"), std::string::npos);
  EXPECT_NE(json.find("\"shed\":1"), std::string::npos);
  EXPECT_NE(json.find("\"accuracy\":1"), std::string::npos);
  EXPECT_NE(json.find("\"queue_wait\""), std::string::npos);
  EXPECT_NE(json.find("\"percentiles_exact\":true"), std::string::npos);
}

TEST(MetricsReservoir, BoundsSampleMemoryAndKeepsPercentilesSane) {
  serving::MetricsConfig config;
  config.latency_reservoir = 64;
  serving::MetricsRegistry registry{config};
  // 10k samples uniform-ish over [0, 100): far beyond the reservoir bound.
  for (int i = 0; i < 10000; ++i) {
    serving::TaskResult r;
    r.queue_wait_ms = static_cast<double>(i % 100);
    r.end_to_end_ms = static_cast<double>(i % 100);
    registry.on_completed(r);
  }
  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.end_to_end.stats.count(), 10000u);
  // Bounded: the percentile estimator holds exactly the reservoir cap.
  EXPECT_EQ(snap.end_to_end.percentile_samples, 64u);
  // Estimates stay inside the data range and ordered.
  EXPECT_GE(snap.end_to_end.p50_ms, 0.0);
  EXPECT_LE(snap.end_to_end.p99_ms, 99.0);
  EXPECT_LE(snap.end_to_end.p50_ms, snap.end_to_end.p95_ms);
  EXPECT_LE(snap.end_to_end.p95_ms, snap.end_to_end.p99_ms);
  // Exact mode below the bound is flagged as such.
  serving::MetricsRegistry small{config};
  serving::TaskResult r;
  r.end_to_end_ms = 5.0;
  small.on_completed(r);
  EXPECT_EQ(small.snapshot().end_to_end.percentile_samples, 1u);
}

}  // namespace
