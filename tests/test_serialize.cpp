#include <gtest/gtest.h>

#include <sstream>

#include "nn/linear.hpp"
#include "nn/serialize.hpp"

namespace einet::nn {
namespace {

TEST(Serialize, RoundTripRestoresValues) {
  util::Rng rng{1};
  Linear a{4, 3, rng};
  Linear b{4, 3, rng};  // different random init

  std::stringstream buf;
  save_params(buf, a.params());
  load_params(buf, b.params());

  for (std::size_t i = 0; i < a.weight().value.numel(); ++i)
    EXPECT_EQ(a.weight().value[i], b.weight().value[i]);
  for (std::size_t i = 0; i < a.bias().value.numel(); ++i)
    EXPECT_EQ(a.bias().value[i], b.bias().value[i]);
}

TEST(Serialize, RejectsWrongParameterCount) {
  util::Rng rng{2};
  Linear a{4, 3, rng};
  std::stringstream buf;
  save_params(buf, a.params());
  std::vector<Param*> partial{a.params()[0]};
  EXPECT_THROW(load_params(buf, partial), std::runtime_error);
}

TEST(Serialize, RejectsShapeMismatch) {
  util::Rng rng{3};
  Linear a{4, 3, rng};
  Linear b{5, 3, rng};
  std::stringstream buf;
  save_params(buf, a.params());
  EXPECT_THROW(load_params(buf, b.params()), std::runtime_error);
}

TEST(Serialize, RejectsGarbageMagic) {
  util::Rng rng{4};
  Linear a{2, 2, rng};
  std::stringstream buf{"not a weights file"};
  EXPECT_THROW(load_params(buf, a.params()), std::runtime_error);
}

TEST(Serialize, RejectsTruncatedStream) {
  util::Rng rng{5};
  Linear a{4, 3, rng};
  std::stringstream buf;
  save_params(buf, a.params());
  const std::string full = buf.str();
  std::stringstream cut{full.substr(0, full.size() / 2)};
  EXPECT_THROW(load_params(cut, a.params()), std::runtime_error);
}

TEST(Serialize, FileRoundTrip) {
  util::Rng rng{6};
  Linear a{3, 2, rng};
  Linear b{3, 2, rng};
  const std::string path = ::testing::TempDir() + "/einet_weights.bin";
  save_params_file(path, a.params());
  load_params_file(path, b.params());
  for (std::size_t i = 0; i < a.weight().value.numel(); ++i)
    EXPECT_EQ(a.weight().value[i], b.weight().value[i]);
  EXPECT_THROW(load_params_file("/nonexistent/x.bin", a.params()),
               std::runtime_error);
}

}  // namespace
}  // namespace einet::nn
