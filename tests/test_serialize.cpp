#include <gtest/gtest.h>

#include <sstream>

#include "nn/batchnorm.hpp"
#include "nn/linear.hpp"
#include "nn/serialize.hpp"

namespace einet::nn {
namespace {

TEST(Serialize, RoundTripRestoresValues) {
  util::Rng rng{1};
  Linear a{4, 3, rng};
  Linear b{4, 3, rng};  // different random init

  std::stringstream buf;
  save_params(buf, a.params());
  load_params(buf, b.params());

  for (std::size_t i = 0; i < a.weight().value.numel(); ++i)
    EXPECT_EQ(a.weight().value[i], b.weight().value[i]);
  for (std::size_t i = 0; i < a.bias().value.numel(); ++i)
    EXPECT_EQ(a.bias().value[i], b.bias().value[i]);
}

TEST(Serialize, RejectsWrongParameterCount) {
  util::Rng rng{2};
  Linear a{4, 3, rng};
  std::stringstream buf;
  save_params(buf, a.params());
  std::vector<Param*> partial{a.params()[0]};
  EXPECT_THROW(load_params(buf, partial), std::runtime_error);
}

TEST(Serialize, RejectsShapeMismatch) {
  util::Rng rng{3};
  Linear a{4, 3, rng};
  Linear b{5, 3, rng};
  std::stringstream buf;
  save_params(buf, a.params());
  EXPECT_THROW(load_params(buf, b.params()), std::runtime_error);
}

TEST(Serialize, RejectsGarbageMagic) {
  util::Rng rng{4};
  Linear a{2, 2, rng};
  std::stringstream buf{"not a weights file"};
  EXPECT_THROW(load_params(buf, a.params()), std::runtime_error);
}

TEST(Serialize, RejectsTruncatedStream) {
  util::Rng rng{5};
  Linear a{4, 3, rng};
  std::stringstream buf;
  save_params(buf, a.params());
  const std::string full = buf.str();
  std::stringstream cut{full.substr(0, full.size() / 2)};
  EXPECT_THROW(load_params(cut, a.params()), std::runtime_error);
}

TEST(Serialize, StateBuffersTravelWithTheWeights) {
  util::Rng rng{7};
  BatchNorm2d a{3};
  BatchNorm2d b{3};
  // Drive a's running stats away from the {0, 1} init so the round trip has
  // something to prove.
  Tensor x{{2, 3, 2, 2}};
  for (std::size_t i = 0; i < x.numel(); ++i)
    x.raw()[i] = rng.gaussian(1.5f, 2.0f);
  (void)a.forward(x, /*train=*/true);
  ASSERT_NE(a.running_mean()[0], b.running_mean()[0]);

  std::stringstream buf;
  save_params(buf, a.params(), a.state());
  load_params(buf, b.params(), b.state());
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_EQ(a.running_mean()[c], b.running_mean()[c]);
    EXPECT_EQ(a.running_var()[c], b.running_var()[c]);
  }
}

TEST(Serialize, RejectsStateCountMismatch) {
  util::Rng rng{8};
  BatchNorm2d a{2};
  std::stringstream buf;
  save_params(buf, a.params(), a.state());
  BatchNorm2d b{2};
  // A loader that forgets the state section must fail loudly, not silently
  // keep init-value running stats.
  EXPECT_THROW(load_params(buf, b.params()), std::runtime_error);
}

TEST(Serialize, FileRoundTrip) {
  util::Rng rng{6};
  Linear a{3, 2, rng};
  Linear b{3, 2, rng};
  const std::string path = ::testing::TempDir() + "/einet_weights.bin";
  save_params_file(path, a.params());
  load_params_file(path, b.params());
  for (std::size_t i = 0; i < a.weight().value.numel(); ++i)
    EXPECT_EQ(a.weight().value[i], b.weight().value[i]);
  EXPECT_THROW(load_params_file("/nonexistent/x.bin", a.params()),
               std::runtime_error);
}

}  // namespace
}  // namespace einet::nn
