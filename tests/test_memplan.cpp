// Memory-planning suite (DESIGN.md §15): randomized overlap-free slot
// assignment, planner validation, budget arithmetic, and — on a real trained
// network — planned-vs-unplanned bit-identity, arena staleness across
// early-exit truncated runs, zero scratch overflow, and the shared-weights
// accounting the serving memory gauges report.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/time_distribution.hpp"
#include "data/synthetic.hpp"
#include "models/backbones.hpp"
#include "models/trainer.hpp"
#include "nn/memplan/arena.hpp"
#include "nn/memplan/budget.hpp"
#include "nn/memplan/plan.hpp"
#include "nn/memplan/profile.hpp"
#include "predictor/cs_predictor.hpp"
#include "profiling/platform.hpp"
#include "profiling/profiler.hpp"
#include "runtime/batched_engine.hpp"
#include "runtime/live_engine.hpp"
#include "serving/replicate.hpp"
#include "util/rng.hpp"

namespace einet {
namespace {

// ------------------------------------------------------------ assign_slots

/// Slot sizes implied by an assignment: max member size per slot.
std::vector<std::size_t> slot_sizes(
    const std::vector<memplan::PlannedBuffer>& planned) {
  std::vector<std::size_t> sizes;
  for (const auto& b : planned) {
    if (b.slot >= sizes.size()) sizes.resize(b.slot + 1, 0);
    sizes[b.slot] = std::max(sizes[b.slot], b.req.floats);
  }
  return sizes;
}

TEST(AssignSlots, RandomizedLifetimesNeverShareStorageWhileLive) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    util::Rng rng{900 + seed};
    std::vector<memplan::BufferReq> reqs;
    const std::size_t count = 3 + rng.uniform_int(40);
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t a = rng.uniform_int(30);
      const std::size_t b = rng.uniform_int(30);
      reqs.push_back({.name = "b" + std::to_string(i),
                      .floats = 1 + rng.uniform_int(512),
                      .life = {std::min(a, b), std::max(a, b)}});
    }
    const auto planned = memplan::assign_slots(reqs);
    ASSERT_EQ(planned.size(), reqs.size());
    // Lay the slots out back to back (as plan_memory does) so each buffer
    // owns the float range [offset[slot], offset[slot] + size[slot]).
    const auto sizes = slot_sizes(planned);
    std::vector<std::size_t> offset(sizes.size(), 0);
    for (std::size_t s = 1; s < sizes.size(); ++s)
      offset[s] = offset[s - 1] + sizes[s - 1];
    for (std::size_t i = 0; i < planned.size(); ++i) {
      ASSERT_LE(planned[i].req.floats, sizes[planned[i].slot]);
      for (std::size_t j = i + 1; j < planned.size(); ++j) {
        if (!memplan::lifetimes_overlap(planned[i].req.life,
                                        planned[j].req.life))
          continue;
        // Live at the same step: must be in different slots, and the slots'
        // float ranges must not intersect.
        ASSERT_NE(planned[i].slot, planned[j].slot)
            << "seed " << seed << ": buffers " << i << "/" << j;
        const std::size_t ai = offset[planned[i].slot];
        const std::size_t bi = ai + sizes[planned[i].slot];
        const std::size_t aj = offset[planned[j].slot];
        const std::size_t bj = aj + sizes[planned[j].slot];
        ASSERT_TRUE(bi <= aj || bj <= ai)
            << "seed " << seed << ": overlapping ranges for " << i << "/" << j;
      }
    }
  }
}

TEST(AssignSlots, ReusesSlotsAcrossDisjointLifetimes) {
  // Three sequential buffers with disjoint lifetimes collapse into one slot.
  std::vector<memplan::BufferReq> reqs = {
      {.name = "a", .floats = 8, .life = {0, 1}},
      {.name = "b", .floats = 16, .life = {2, 3}},
      {.name = "c", .floats = 4, .life = {4, 5}},
  };
  const auto planned = memplan::assign_slots(reqs);
  EXPECT_EQ(planned[0].slot, 0u);
  EXPECT_EQ(planned[1].slot, 0u);
  EXPECT_EQ(planned[2].slot, 0u);
  EXPECT_EQ(slot_sizes(planned), (std::vector<std::size_t>{16}));
}

TEST(AssignSlots, RejectsInvertedLifetime) {
  std::vector<memplan::BufferReq> reqs = {
      {.name = "bad", .floats = 8, .life = {3, 1}}};
  EXPECT_THROW((void)memplan::assign_slots(reqs), std::invalid_argument);
}

TEST(PlanMemory, RejectsInconsistentProfiles) {
  memplan::ActivationProfile empty;
  EXPECT_THROW((void)memplan::plan_memory(empty), std::invalid_argument);

  memplan::ActivationProfile bad;
  bad.num_exits = 2;
  bad.num_classes = 10;
  bad.num_steps = 3;  // must be 2 * num_exits
  bad.buffers = {{.name = "x", .floats = 4, .life = {0, 1}}};
  bad.feat_buffer = {0, 0, 0};
  bad.logits_buffer = {0, 0};
  bad.step_scratch.resize(3);
  EXPECT_THROW((void)memplan::plan_memory(bad), std::invalid_argument);

  bad.num_steps = 4;
  bad.step_scratch.resize(4);
  bad.feat_buffer = {0, 0, 9};  // out of bounds
  EXPECT_THROW((void)memplan::plan_memory(bad), std::invalid_argument);
}

// -------------------------------------------------------------- fit_budget

TEST(FitBudget, EdgeCases) {
  // Too small for even one worker: explicit error, not workers == 0.
  EXPECT_THROW((void)memplan::fit_budget(999, 800, 200),
               std::invalid_argument);
  EXPECT_THROW((void)memplan::fit_budget(10'000, 800, 0),
               std::invalid_argument);

  // Exact fit for one worker.
  const auto one = memplan::fit_budget(1000, 800, 200);
  EXPECT_EQ(one.workers, 1u);
  EXPECT_EQ(one.total_bytes, 1000u);

  // Budget arithmetic: weights are paid once, arenas per worker.
  const auto many = memplan::fit_budget(800 + 5 * 200 + 199, 800, 200);
  EXPECT_EQ(many.workers, 5u);
  EXPECT_EQ(many.total_bytes, 800u + 5u * 200u);

  // max_workers caps the count below what the budget affords.
  const auto capped = memplan::fit_budget(1'000'000, 800, 200, 3);
  EXPECT_EQ(capped.workers, 3u);
}

// ------------------------------------------------- live network fixtures

struct MemPipeline {
  data::SyntheticDataset ds;
  serving::SharedModel model;
  profiling::ETProfile et;
  /// A per-worker deep clone made before the weights froze (the pre-sharing
  /// design), for shared-vs-clone bit-identity checks.
  std::unique_ptr<predictor::CSPredictor> pred_clone;

  static MemPipeline build() {
    auto spec = data::synth_cifar10_spec(120, 40);
    auto ds = data::make_synthetic(spec);
    util::Rng rng{7};
    auto net = models::make_msdnet(
        models::MsdnetSpec{.blocks = 4, .step = 1, .base = 1, .channel = 6},
        ds.train->input_shape(), ds.train->num_classes(), rng);
    models::MultiExitTrainer trainer{net};
    models::TrainConfig tc;
    tc.epochs = 2;
    tc.batch_size = 20;
    trainer.train(*ds.train, tc);
    auto et =
        profiling::profile_execution_time(net, profiling::edge_fast_platform());
    auto cs = profiling::profile_confidence(net, *ds.test);
    predictor::CSPredictorConfig pc;
    pc.hidden = 16;
    pc.epochs = 6;
    auto pred = std::make_unique<predictor::CSPredictor>(net.num_exits(), pc);
    pred->train(cs);
    auto clone = serving::clone_predictor(*pred);
    auto model = serving::freeze_model(std::move(net), std::move(pred));
    return MemPipeline{std::move(ds), std::move(model), std::move(et),
                       std::move(clone)};
  }
};

class MemplanLiveTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    pipeline_ = new MemPipeline(MemPipeline::build());
  }
  static void TearDownTestSuite() {
    delete pipeline_;
    pipeline_ = nullptr;
  }
  static MemPipeline* pipeline_;
};

MemPipeline* MemplanLiveTest::pipeline_ = nullptr;

/// Full-outcome equality except planner_ms (wall-clock search telemetry):
/// the planned path must be bit-identical to the unplanned path.
void expect_outcome_identical(const runtime::InferenceOutcome& planned,
                              const runtime::InferenceOutcome& unplanned,
                              std::size_t sample) {
  EXPECT_EQ(planned.has_result, unplanned.has_result) << "sample " << sample;
  EXPECT_EQ(planned.exit_index, unplanned.exit_index) << "sample " << sample;
  EXPECT_EQ(planned.correct, unplanned.correct) << "sample " << sample;
  EXPECT_EQ(planned.result_time_ms, unplanned.result_time_ms)
      << "sample " << sample;
  EXPECT_EQ(planned.deadline_ms, unplanned.deadline_ms) << "sample " << sample;
  EXPECT_EQ(planned.branches_executed, unplanned.branches_executed)
      << "sample " << sample;
  EXPECT_EQ(planned.searches_run, unplanned.searches_run)
      << "sample " << sample;
  EXPECT_EQ(planned.completed, unplanned.completed) << "sample " << sample;
}

TEST_F(MemplanLiveTest, PlanReusesSlotsAndPrewarmsScratch) {
  const auto& plan = *pipeline_->model.plan;
  // 4 blocks -> 5 feature maps + 4 logits buffers; interval reuse must
  // collapse them into far fewer slots (feature ping-pong + logits).
  EXPECT_EQ(plan.buffers.size(), 9u);
  EXPECT_LT(plan.slot_floats.size(), plan.buffers.size());
  std::size_t total_floats = 0;
  for (const auto& b : plan.buffers) total_floats += b.req.floats;
  EXPECT_LT(plan.activation_floats, total_floats);
  // The stepwise path takes scratch (im2col, container intermediates), and
  // the dominating multiset covers it.
  EXPECT_FALSE(plan.scratch_blocks.empty());
  EXPECT_GT(plan.arena_bytes(), 0u);
  EXPECT_GE(plan.peak_floats, plan.scratch_floats);
}

TEST_F(MemplanLiveTest, PlannedOutcomesBitIdenticalToUnplanned) {
  auto& p = *pipeline_;
  const runtime::ElasticConfig cfg;
  // Unplanned reference engine borrows the same frozen weights.
  runtime::LiveElasticEngine unplanned{*p.model.net, p.et,
                                       p.model.predictor.get(), cfg};
  auto engines = serving::make_worker_engines(p.model, p.et, cfg, 1);
  ASSERT_EQ(engines.size(), 1u);
  runtime::LiveElasticEngine& planned = *engines[0];
  EXPECT_GT(planned.arena_bytes(), 0u);
  EXPECT_EQ(unplanned.arena_bytes(), 0u);

  const core::UniformExitDistribution dist{p.et.total_ms()};
  util::Rng rng{42};
  bool any_killed = false;
  bool any_completed = false;
  for (std::size_t s = 0; s < 12; ++s) {
    double deadline = dist.sample(rng);
    if (s == 0) deadline = p.et.conv_ms[0] * 0.5;  // killed before exit 0
    if (s == 1) deadline = 2.0 * p.et.total_ms();  // always completes
    const auto& sample = p.ds.test->sample(s);
    const auto a = planned.run(sample.image, sample.label, deadline, dist);
    const auto b = unplanned.run(sample.image, sample.label, deadline, dist);
    expect_outcome_identical(a, b, s);
    any_killed |= !a.completed;
    any_completed |= a.completed;
  }
  EXPECT_TRUE(any_killed);
  EXPECT_TRUE(any_completed);
  // The pre-warmed scratch pool must have served every take.
  EXPECT_EQ(planned.arena_scratch_overflows(), 0u);
}

TEST_F(MemplanLiveTest, TruncatedRunsNeverReadStaleArenaBytes) {
  auto& p = *pipeline_;
  const runtime::ElasticConfig cfg;
  auto engines = serving::make_worker_engines(p.model, p.et, cfg, 1);
  runtime::LiveElasticEngine& planned = *engines[0];
  const core::UniformExitDistribution dist{p.et.total_ms()};

  // Saturate every arena slot with sample 0's activations (full run), then
  // run other samples truncated at progressively earlier blocks. If any
  // kernel read bytes beyond what it overwrote, the outcome would diverge
  // from a FRESH unplanned engine that has no stale state at all.
  const auto& warm = p.ds.test->sample(0);
  (void)planned.run(warm.image, warm.label, 10.0 * p.et.total_ms(), dist);

  for (std::size_t k = 0; k < p.et.num_blocks(); ++k) {
    // Deadline lands right after block k's branch: exits > k never run, so
    // their slot regions still hold sample 0's (or older) bytes.
    double deadline = 0.0;
    for (std::size_t i = 0; i <= k; ++i)
      deadline += p.et.conv_ms[i] + p.et.branch_ms[i];
    deadline += 0.25 * p.et.conv_ms[k];
    const auto& sample = p.ds.test->sample(5 + k);
    const auto got = planned.run(sample.image, sample.label, deadline, dist);

    runtime::LiveElasticEngine fresh{*p.model.net, p.et,
                                     p.model.predictor.get(), cfg};
    const auto want = fresh.run(sample.image, sample.label, deadline, dist);
    expect_outcome_identical(got, want, 5 + k);
  }
  EXPECT_EQ(planned.arena_scratch_overflows(), 0u);
}

TEST_F(MemplanLiveTest, BatchedEngineArenaPathBitIdentical) {
  auto& p = *pipeline_;
  const runtime::ElasticConfig cfg;
  runtime::BatchedLiveEngine planned{p.model.net, p.et, p.model.predictor,
                                     cfg, p.model.plan};
  runtime::BatchedLiveEngine unplanned{*p.model.net, p.et,
                                       p.model.predictor.get(), cfg};
  EXPECT_GT(planned.arena_bytes(), 0u);
  EXPECT_EQ(unplanned.arena_bytes(), 0u);

  const core::UniformExitDistribution dist{p.et.total_ms()};
  util::Rng rng{1234};
  std::vector<runtime::BatchItem> items;
  for (std::size_t s = 0; s < 6; ++s)
    items.push_back({.image = &p.ds.test->sample(20 + s).image,
                     .label = p.ds.test->sample(20 + s).label,
                     .deadline_ms = dist.sample(rng)});
  items[0].deadline_ms = p.et.conv_ms[0] * 0.5;
  items[1].deadline_ms = 2.0 * p.et.total_ms();

  const auto a = planned.run_batched(items, dist);
  const auto b = unplanned.run_batched(items, dist);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t s = 0; s < a.size(); ++s)
    expect_outcome_identical(a[s], b[s], 20 + s);
  EXPECT_EQ(planned.arena_scratch_overflows(), 0u);
}

TEST_F(MemplanLiveTest, ArenaRejectsOversizedAndOutOfRangeRequests) {
  auto& p = *pipeline_;
  memplan::InferenceArena arena{p.model.plan};
  EXPECT_THROW((void)arena.buffer(p.model.plan->buffers.size(), {1}),
               std::out_of_range);
  // Feature 1's slot was profiled at its exact batch-1 size; asking for more
  // floats than the slot holds must throw, not grow the slot.
  const std::size_t floats =
      p.model.plan->buffers[p.model.plan->feat_buffer[1]].req.floats;
  EXPECT_THROW((void)arena.feature(1, {1, floats + 1}),
               std::invalid_argument);
}

TEST_F(MemplanLiveTest, SharedModelAccountingIsExact) {
  auto& p = *pipeline_;
  EXPECT_GT(p.model.weight_bytes, 0u);
  EXPECT_GT(p.model.arena_bytes(), 0u);
  EXPECT_EQ(p.model.bytes_for(0), p.model.weight_bytes);
  EXPECT_EQ(p.model.bytes_for(4),
            p.model.weight_bytes + 4 * p.model.arena_bytes());
  // N engines over one SharedModel really do share the single weight copy.
  auto engines = serving::make_worker_engines(p.model, p.et, {}, 3);
  long expected_uses = 1;  // the model's own reference
  expected_uses += 3;      // one per engine
  EXPECT_EQ(p.model.net.use_count(), expected_uses);
  for (const auto& e : engines)
    EXPECT_EQ(e->arena_bytes(), engines[0]->arena_bytes());
  // The budget knob round-trips through the model's own byte accounting.
  const auto fit = p.model.fit_budget(p.model.bytes_for(2));
  EXPECT_EQ(fit.workers, 2u);
  EXPECT_THROW((void)p.model.fit_budget(p.model.weight_bytes),
               std::invalid_argument);
}

TEST_F(MemplanLiveTest, SharedPredictorBitIdenticalToPerWorkerClones) {
  auto& p = *pipeline_;
  // A per-worker deep clone (the pre-sharing design) and the shared frozen
  // predictor must plan identically: clone_predictor is bit-exact and
  // predict() is stateless.
  const runtime::ElasticConfig cfg;
  runtime::LiveElasticEngine shared_engine{*p.model.net, p.et,
                                           p.model.predictor.get(), cfg};
  runtime::LiveElasticEngine cloned_engine{*p.model.net, p.et,
                                           p.pred_clone.get(), cfg};
  const core::UniformExitDistribution dist{p.et.total_ms()};
  util::Rng rng{77};
  for (std::size_t s = 0; s < 6; ++s) {
    const double deadline = dist.sample(rng);
    const auto& sample = p.ds.test->sample(s);
    expect_outcome_identical(
        shared_engine.run(sample.image, sample.label, deadline, dist),
        cloned_engine.run(sample.image, sample.label, deadline, dist), s);
  }
}

}  // namespace
}  // namespace einet
