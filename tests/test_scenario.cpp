// Scenario-engine suite (DESIGN.md §7): CancelToken semantics, script
// determinism and JSON round-trips, cancellable-run equivalence with the
// deadline path, online estimator convergence (the 2% closed-loop criterion)
// and drift detection, byte-identical replay of the kill ledger, and the
// wall-clock injector racing real serving workers (the TSan target).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "core/cancel_token.hpp"
#include "core/expectation.hpp"
#include "core/search.hpp"
#include "core/time_distribution.hpp"
#include "profiling/profiles.hpp"
#include "runtime/elastic_engine.hpp"
#include "scenario/estimator.hpp"
#include "scenario/injector.hpp"
#include "scenario/scenario_script.hpp"
#include "serving/replicate.hpp"
#include "serving/server.hpp"
#include "util/rng.hpp"

namespace einet::scenario {
namespace {

// ---------------------------------------------------------------- fixtures

profiling::ETProfile tiny_et() {
  profiling::ETProfile et;
  et.model_name = "tiny";
  et.platform_name = "test";
  et.conv_ms = {1.0, 1.0, 1.0, 1.0};
  et.branch_ms = {0.5, 0.5, 0.5, 0.5};
  return et;
}

profiling::CSProfile tiny_cs(std::size_t records, std::uint64_t seed = 7) {
  profiling::CSProfile cs;
  cs.model_name = "tiny";
  cs.dataset_name = "synthetic";
  cs.num_exits = 4;
  util::Rng rng{seed};
  for (std::size_t r = 0; r < records; ++r) {
    profiling::CSRecord rec;
    float conf = rng.uniform_f(0.2f, 0.5f);
    for (std::size_t e = 0; e < cs.num_exits; ++e) {
      conf = std::min(1.0f, conf + rng.uniform_f(0.0f, 0.2f));
      rec.confidence.push_back(conf);
      rec.correct.push_back(rng.bernoulli(conf) ? 1 : 0);
    }
    rec.label = r % 10;
    cs.records.push_back(std::move(rec));
  }
  cs.validate();
  return cs;
}

runtime::ElasticEngine fallback_engine(const profiling::ETProfile& et) {
  return runtime::ElasticEngine{et, nullptr, runtime::ElasticConfig{},
                                std::vector<float>(et.num_blocks(), 0.5f)};
}

bool same_outcome(const runtime::InferenceOutcome& a,
                  const runtime::InferenceOutcome& b) {
  return a.has_result == b.has_result && a.exit_index == b.exit_index &&
         a.correct == b.correct && a.result_time_ms == b.result_time_ms &&
         a.branches_executed == b.branches_executed &&
         a.searches_run == b.searches_run && a.completed == b.completed;
}

// -------------------------------------------------------------- CancelToken

TEST(CancelToken, VirtualArmTripsOnSimClock) {
  core::CancelToken token;
  EXPECT_FALSE(token.cancelled(1e9));
  token.arm_virtual(3.0);
  EXPECT_FALSE(token.cancelled(3.0));  // kill at t > d, matching deadline path
  EXPECT_TRUE(token.cancelled(3.0 + 1e-9));
  EXPECT_EQ(token.virtual_kill_ms(), 3.0);
}

TEST(CancelToken, FireDeliversRegardlessOfSimTime) {
  core::CancelToken token;
  EXPECT_FALSE(token.cancelled(0.0));
  token.fire();
  EXPECT_TRUE(token.cancelled(0.0));
  EXPECT_TRUE(token.fired());
  token.reset();
  EXPECT_FALSE(token.cancelled(1e9));
  EXPECT_FALSE(token.fired());
}

// ----------------------------------------------------------- ScenarioScript

TEST(ScenarioScript, KillsAreDeterministicAndOrderFree) {
  const auto script = ScenarioScript{6.0, 42}
                          .uniform_phase(50)
                          .gaussian_phase(50, 3.0, 1.0);
  std::vector<double> forward, backward;
  for (std::size_t i = 0; i < 100; ++i)
    forward.push_back(script.kill_for_task(i));
  for (std::size_t i = 100; i-- > 0;)
    backward.push_back(script.kill_for_task(i));
  std::reverse(backward.begin(), backward.end());
  EXPECT_EQ(forward, backward);
  for (const double k : forward) {
    EXPECT_GE(k, 0.0);
    EXPECT_LE(k, 6.0);
  }
  // Tasks beyond the schedule stay in the final phase.
  EXPECT_EQ(script.phase_of_task(99), 1u);
  EXPECT_EQ(script.phase_of_task(1000), 1u);
}

TEST(ScenarioScript, JsonRoundTripPreservesEveryKill) {
  auto script = ScenarioScript{8.0, 7}
                    .bursty_phase(30, {0.2, 0.45, 0.8}, 0.04, 0.75)
                    .vran_slots_phase(30, 2.0, 0.1)
                    .trace_phase(30, {1.0, 2.5, 7.0});
  const auto round = ScenarioScript::from_json_text(script.to_json_text());
  EXPECT_EQ(round.to_json_text(), script.to_json_text());
  EXPECT_EQ(round.num_phases(), 3u);
  EXPECT_EQ(round.total_tasks(), 90u);
  for (std::size_t i = 0; i < 90; ++i)
    EXPECT_EQ(round.kill_for_task(i), script.kill_for_task(i)) << i;
}

TEST(ScenarioScript, FromSeedIsReproducibleAndValid) {
  const auto a = ScenarioScript::from_seed(5.0, 123, 4, 25);
  const auto b = ScenarioScript::from_seed(5.0, 123, 4, 25);
  EXPECT_EQ(a.to_json_text(), b.to_json_text());
  EXPECT_EQ(a.num_phases(), 4u);
  EXPECT_EQ(a.total_tasks(), 100u);
  const auto c = ScenarioScript::from_seed(5.0, 124, 4, 25);
  EXPECT_NE(a.to_json_text(), c.to_json_text());  // seed actually matters
}

TEST(ScenarioScript, BurstySamplingMatchesHandRolledVranTrace) {
  // The exact law examples/vran_preemption.cpp used before the scenario
  // engine existed; the migration relies on this consumption order.
  const double h = 10.0;
  const auto script = ScenarioScript{h, 0}.bursty_phase(1);
  util::Rng a{99}, b{99};
  const auto trace = script.sample_trace(0, 500, a);
  const double bursts[] = {0.20, 0.45, 0.80};
  for (const double got : trace) {
    double want = 0.0;
    if (b.bernoulli(0.75)) {
      const double centre = bursts[b.uniform_int(3)] * h;
      want = std::clamp(b.gaussian(centre, 0.04 * h), 0.0, h);
    } else {
      want = b.uniform(0.0, h);
    }
    EXPECT_EQ(got, want);
  }
}

TEST(ScenarioScript, TrueDistributionMatchesEmpiricalKills) {
  // A continuous regime (bursty) so the KS-at-sample-points comparison is
  // meaningful; slot regimes concentrate mass in atoms where two step CDFs
  // legitimately disagree at the tie points.
  const auto script = ScenarioScript{6.0, 11}.bursty_phase(1);
  const auto dist = script.true_distribution(0);
  // The per-task kills must look like draws from the claimed distribution.
  std::vector<double> kills;
  for (std::size_t i = 0; i < 4000; ++i)
    kills.push_back(script.kill_for_task(i));
  std::sort(kills.begin(), kills.end());
  double max_gap = 0.0;
  for (std::size_t i = 0; i < kills.size(); ++i) {
    const double emp = static_cast<double>(i + 1) /
                       static_cast<double>(kills.size());
    max_gap = std::max(max_gap, std::abs(emp - dist->cdf(kills[i])));
  }
  EXPECT_LT(max_gap, 0.05);
}

// -------------------------------------------- run_cancellable ≡ run (virtual)

TEST(RunCancellable, VirtualTokenBitIdenticalToDeadlinePath) {
  const auto et = tiny_et();
  const auto cs = tiny_cs(40);
  const core::UniformExitDistribution dist{et.total_ms()};
  auto eng_a = fallback_engine(et);
  auto eng_b = fallback_engine(et);
  util::Rng rng{5};
  for (const auto& rec : cs.records) {
    const double kill = rng.uniform(0.0, 1.2 * et.total_ms());
    const auto want = eng_a.run(rec, kill, dist);
    core::CancelToken token;
    token.arm_virtual(kill);
    const auto got = eng_b.run_cancellable(rec, token, dist);
    EXPECT_TRUE(same_outcome(want, got)) << "kill=" << kill;
    EXPECT_EQ(want.deadline_ms, got.deadline_ms);
  }
}

TEST(RunCancellable, BlockHookSeesMonotoneClockAndFiredTokenStops) {
  const auto et = tiny_et();
  const auto cs = tiny_cs(1);
  const core::UniformExitDistribution dist{et.total_ms()};
  auto engine = fallback_engine(et);
  core::CancelToken token;  // never armed, never fired: plan completes
  std::vector<double> ticks;
  const auto outcome = engine.run_cancellable(
      *&cs.records[0], token, dist,
      [&ticks](std::size_t, double t) { ticks.push_back(t); });
  EXPECT_TRUE(outcome.completed);
  EXPECT_TRUE(std::is_sorted(ticks.begin(), ticks.end()));
  ASSERT_FALSE(ticks.empty());

  // Fire mid-flight: stop after the second hook call.
  core::CancelToken kill_token;
  std::size_t calls = 0;
  const auto killed = engine.run_cancellable(
      cs.records[0], kill_token, dist,
      [&](std::size_t, double) {
        if (++calls == 2) kill_token.fire();
      });
  EXPECT_FALSE(killed.completed);
  EXPECT_LT(killed.branches_executed, outcome.branches_executed);
}

// -------------------------------------------------------- OnlineExitEstimator

TEST(Estimator, ConvergesWithinTwoPercentAccuracyExpectation) {
  // Closed loop on a stationary scenario: after >= 500 observed kills the
  // plan searched under the estimated distribution must be worth within 2%
  // (in true accuracy expectation) of the plan searched under the truth.
  const auto et = tiny_et();
  const auto script =
      ScenarioScript{et.total_ms(), 77}.gaussian_phase(1, 3.5, 1.2);
  const auto truth = script.true_distribution(0);

  OnlineExitEstimator est{et.total_ms()};
  for (std::size_t i = 0; i < 600; ++i) est.observe(script.kill_for_task(i));
  ASSERT_GE(est.count(), 500u);
  const auto estimated = est.snapshot();

  const std::vector<float> conf{0.4f, 0.55f, 0.7f, 0.85f};
  core::SearchEngine search{{}};
  const auto plan_under = [&](const core::TimeDistribution& d) {
    core::PlanProblem p{.conv_ms = et.conv_ms,
                        .branch_ms = et.branch_ms,
                        .confidence = conf,
                        .dist = &d,
                        .fixed_prefix = 0,
                        .base = core::ExitPlan{4}};
    return search.search(p).plan;
  };
  const double e_true = core::accuracy_expectation(
      plan_under(*truth), et.conv_ms, et.branch_ms, conf, *truth);
  const double e_est = core::accuracy_expectation(
      plan_under(estimated), et.conv_ms, et.branch_ms, conf, *truth);
  ASSERT_GT(e_true, 0.0);
  EXPECT_GE(e_est, 0.98 * e_true)
      << "estimated-dist plan loses more than 2% true expectation";
}

TEST(Estimator, DriftFiresOnRegimeSwitchAndBumpsGeneration) {
  const double h = 6.0;
  OnlineExitEstimator est{h};
  const auto gen0 = est.plan_generation();
  // Long stationary uniform stretch: no drift.
  const auto script = ScenarioScript{h, 3}
                          .uniform_phase(800)
                          .gaussian_phase(800, 5.0, 0.3);
  std::size_t i = 0;
  for (; i < 800; ++i) est.observe(script.kill_for_task(i));
  EXPECT_EQ(est.drift_events(), 0u);
  EXPECT_EQ(est.plan_generation(), gen0);
  // Regime switch to a tight late-horizon Gaussian: drift must fire.
  for (; i < 1600; ++i) est.observe(script.kill_for_task(i));
  EXPECT_GE(est.drift_events(), 1u);
  EXPECT_GT(est.plan_generation(), gen0);
  // After the rebuild the estimator tracks the *new* regime.
  const auto snap = est.snapshot();
  EXPECT_LT(snap.cdf(3.0), 0.3);  // most mass is now near t=5
  EXPECT_GT(snap.cdf(5.8), 0.7);
}

TEST(Estimator, SnapshotBeforeObservationThrows) {
  OnlineExitEstimator est{5.0};
  EXPECT_THROW((void)est.snapshot(), std::logic_error);
  est.observe(2.5);
  EXPECT_NO_THROW((void)est.snapshot());
}

// ------------------------------------------------------------ record/replay

/// Run the whole scenario sequentially under the virtual clock and return
/// the canonical ledger JSON.
std::string run_virtual_scenario(const ScenarioScript& script,
                                 const profiling::ETProfile& et,
                                 const profiling::CSProfile& cs) {
  PreemptionInjector injector{script};
  auto engine = fallback_engine(et);
  const core::UniformExitDistribution plan_dist{et.total_ms()};
  for (std::size_t i = 0; i < script.total_tasks(); ++i) {
    auto token = std::make_shared<core::CancelToken>();
    injector.subscribe(i, token);
    const auto outcome = engine.run_cancellable(
        cs.records[i % cs.size()], *token, plan_dist);
    injector.complete(i, outcome);
  }
  return injector.ledger().to_json_text();
}

TEST(Replay, VirtualScenarioLedgersAreByteIdentical) {
  const auto et = tiny_et();
  const auto cs = tiny_cs(32);
  const auto script = ScenarioScript::from_seed(et.total_ms(), 2024, 3, 40);
  const std::string first = run_virtual_scenario(script, et, cs);
  const std::string second = run_virtual_scenario(script, et, cs);
  EXPECT_EQ(first, second);
  EXPECT_EQ(PreemptionInjector{script}.ledger().size(), 0u);
  // And through a JSON round-trip of the script itself.
  const std::string third = run_virtual_scenario(
      ScenarioScript::from_json_text(script.to_json_text()), et, cs);
  EXPECT_EQ(first, third);
}

TEST(Replay, LedgerIsCanonicalRegardlessOfCompletionOrder) {
  KillLedger ledger;
  for (const std::uint64_t task : {5u, 1u, 3u, 0u, 4u, 2u}) {
    KillRecord r;
    r.task_index = task;
    r.kill_ms = static_cast<double>(task);
    ledger.record(r);
  }
  const auto snap = ledger.snapshot();
  for (std::size_t i = 0; i < snap.size(); ++i)
    EXPECT_EQ(snap[i].task_index, i);
}

// ------------------------------------------- wall-clock injector + serving

TEST(WallClock, InjectorRacesServingWorkersCleanly) {
  const auto et = tiny_et();
  const auto cs = tiny_cs(64);
  const core::UniformExitDistribution plan_dist{et.total_ms()};
  // One long uniform phase; time_scale stretches the ~6ms horizon so kills
  // land while workers are genuinely mid-task.
  const auto script = ScenarioScript{et.total_ms(), 9}.uniform_phase(1);

  OnlineExitEstimator est{et.total_ms()};
  InjectorConfig icfg;
  icfg.mode = ClockMode::kWall;
  icfg.time_scale = 0.5;
  icfg.estimator = &est;
  PreemptionInjector injector{script, icfg};

  serving::ServerConfig config;
  config.queue_capacity = 512;
  config.pool.num_workers = 4;
  config.pool.injector = &injector;
  serving::TaskRunner runner = [&plan_dist](runtime::ElasticEngine& engine,
                                            const serving::Task& task,
                                            util::Rng&) {
    EXPECT_NE(task.cancel, nullptr);
    return engine.run_cancellable(*task.record, *task.cancel, plan_dist);
  };
  serving::EdgeServer server{
      et,
      serving::make_replicated_engine_factory(et, nullptr, {},
                                              std::vector<float>(4, 0.5f)),
      runner, config};

  util::Rng rng{31};
  std::size_t queued = 0;
  for (int i = 0; i < 300; ++i) {
    if (server.submit(cs.records[rng.uniform_int(cs.size())],
                      1.5 * et.total_ms()) == serving::SubmitStatus::kQueued)
      ++queued;
  }
  server.shutdown();

  const auto snap = server.metrics();
  EXPECT_EQ(snap.completed, queued);
  EXPECT_EQ(injector.ledger().size(), queued);
  EXPECT_EQ(est.count(), queued);
  // The metrics preempted counter and the ledger must tell the same story.
  std::uint64_t ledger_preempted = 0;
  for (const auto& r : injector.ledger().snapshot())
    if (!r.completed) ++ledger_preempted;
  EXPECT_EQ(snap.preempted, ledger_preempted);
}

}  // namespace
}  // namespace einet::scenario
