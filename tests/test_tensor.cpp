#include <gtest/gtest.h>

#include <cstring>

#include "nn/tensor.hpp"

namespace einet::nn {
namespace {

TEST(Shape, NumelAndStr) {
  EXPECT_EQ(shape_numel({2, 3, 4}), 24u);
  EXPECT_EQ(shape_numel({}), 0u);
  EXPECT_EQ(shape_str({1, 3, 32, 32}), "1x3x32x32");
}

TEST(Tensor, DefaultIsEmpty) {
  Tensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.numel(), 0u);
}

TEST(Tensor, ZeroInitialised) {
  Tensor t{{2, 3}};
  EXPECT_EQ(t.numel(), 6u);
  for (std::size_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, FillConstructor) {
  Tensor t{{4}, 2.5f};
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(t[i], 2.5f);
}

TEST(Tensor, DataConstructorValidatesSize) {
  EXPECT_NO_THROW((Tensor{{2, 2}, {1, 2, 3, 4}}));
  EXPECT_THROW((Tensor{{2, 2}, {1, 2, 3}}), std::invalid_argument);
}

TEST(Tensor, MultiDimAccess) {
  Tensor t2{{2, 3}};
  t2.at(1, 2) = 7.0f;
  EXPECT_EQ(t2[1 * 3 + 2], 7.0f);

  Tensor t3{{2, 3, 4}};
  t3.at(1, 2, 3) = 5.0f;
  EXPECT_EQ(t3[(1 * 3 + 2) * 4 + 3], 5.0f);

  Tensor t4{{2, 3, 4, 5}};
  t4.at(1, 2, 3, 4) = 9.0f;
  EXPECT_EQ(t4[((1 * 3 + 2) * 4 + 3) * 5 + 4], 9.0f);
}

TEST(Tensor, AccessThrowsOnWrongRankOrBounds) {
  Tensor t{{2, 3}};
  EXPECT_THROW(t.at(0, 0, 0), std::logic_error);
  EXPECT_THROW(t.at(2, 0), std::out_of_range);
  EXPECT_THROW(t.at(99), std::out_of_range);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t{{2, 3}, {1, 2, 3, 4, 5, 6}};
  const Tensor r = t.reshaped({3, 2});
  EXPECT_EQ(r.shape(), (Shape{3, 2}));
  EXPECT_EQ(r[4], 5.0f);
  EXPECT_THROW(t.reshaped({5}), std::invalid_argument);
}

TEST(Tensor, ArithmeticElementwise) {
  Tensor a{{3}, {1, 2, 3}};
  Tensor b{{3}, {10, 20, 30}};
  EXPECT_EQ((a + b)[2], 33.0f);
  EXPECT_EQ((b - a)[0], 9.0f);
  EXPECT_EQ((a * 2.0f)[1], 4.0f);
  a.add_scaled(b, 0.5f);
  EXPECT_EQ(a[1], 12.0f);
}

TEST(Tensor, ArithmeticShapeMismatchThrows) {
  Tensor a{{3}};
  Tensor b{{4}};
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(a.add_scaled(b, 1.0f), std::invalid_argument);
}

TEST(Tensor, Reductions) {
  Tensor t{{4}, {1, -5, 3, 2}};
  EXPECT_EQ(t.sum(), 1.0f);
  EXPECT_EQ(t.max(), 3.0f);
  EXPECT_EQ(t.argmax(), 2u);
  EXPECT_NEAR(t.norm(), std::sqrt(1 + 25 + 9 + 4), 1e-5);
}

// Regression: sum() used to accumulate in float, drifting on large tensors
// (once the accumulator dwarfs the addends, low bits are rounded away every
// step); norm() already accumulated in double. One million small values must
// sum to the exact double total within float rounding of the result.
TEST(Tensor, SumAccumulatesInDouble) {
  const float v = 0.001f;
  Tensor t{{1000, 1000}, v};
  const double expected = 1e6 * static_cast<double>(v);
  EXPECT_NEAR(static_cast<double>(t.sum()), expected, 1e-4 * expected);
  // Alternating large/small entries: a float accumulator loses the small
  // addends entirely once the running sum is large.
  Tensor mix{{100000}};
  for (std::size_t i = 0; i < mix.numel(); ++i)
    mix[i] = (i % 2 == 0) ? 1000.0f : 1e-4f;
  const double want = 50000.0 * 1000.0 + 50000.0 * static_cast<double>(1e-4f);
  EXPECT_NEAR(static_cast<double>(mix.sum()), want, 1.0);
}

TEST(Tensor, FactoriesRespectShapes) {
  util::Rng rng{1};
  const Tensor u = Tensor::uniform({100}, -2.0f, 3.0f, rng);
  for (std::size_t i = 0; i < u.numel(); ++i) {
    EXPECT_GE(u[i], -2.0f);
    EXPECT_LT(u[i], 3.0f);
  }
  const Tensor n = Tensor::normal({1000}, 1.0f, 0.5f, rng);
  double mean = 0.0;
  for (std::size_t i = 0; i < n.numel(); ++i) mean += n[i];
  EXPECT_NEAR(mean / 1000.0, 1.0, 0.1);
  EXPECT_THROW(Tensor::kaiming({4}, 0, rng), std::invalid_argument);
}

TEST(Softmax, SumsToOneAndPreservesArgmax) {
  std::vector<float> logits{1.0f, 3.0f, 2.0f};
  const auto p = softmax(logits);
  float sum = 0.0f;
  for (float v : p) sum += v;
  EXPECT_NEAR(sum, 1.0f, 1e-5);
  EXPECT_EQ(span_argmax(p), 1u);
  EXPECT_GT(p[1], p[2]);
  EXPECT_GT(p[2], p[0]);
}

TEST(Softmax, NumericallyStableForLargeLogits) {
  std::vector<float> logits{1000.0f, 1001.0f};
  const auto p = softmax(logits);
  EXPECT_FALSE(std::isnan(p[0]));
  EXPECT_NEAR(p[0] + p[1], 1.0f, 1e-5);
}

TEST(Softmax, EmptySpanArgmaxThrows) {
  EXPECT_THROW(span_argmax({}), std::invalid_argument);
}

TEST(BatchRows, StackSelectSliceRoundTripBytewise) {
  util::Rng rng{11};
  const Tensor a = Tensor::uniform({2, 3, 3}, -1, 1, rng);
  const Tensor b = Tensor::uniform({1, 2, 3, 3}, -1, 1, rng);  // batch-of-1
  const Tensor c = Tensor::uniform({2, 3, 3}, -1, 1, rng);
  const Tensor* samples[] = {&a, &b, &c};
  const Tensor stacked = stack_rows(samples);
  ASSERT_EQ(stacked.shape(), (Shape{3, 2, 3, 3}));

  // Each slice is bytewise the original sample (stacking adds no arithmetic).
  const Tensor s1 = slice_row(stacked, 1);
  ASSERT_EQ(s1.shape(), (Shape{1, 2, 3, 3}));
  EXPECT_EQ(0, std::memcmp(s1.raw(), b.raw(), b.numel() * sizeof(float)));
  const Tensor s2 = slice_row(stacked, 2);
  EXPECT_EQ(0, std::memcmp(s2.raw(), c.raw(), c.numel() * sizeof(float)));

  // Gather in arbitrary order with a repeat.
  const std::size_t rows[] = {2, 0, 2};
  const Tensor sel = select_rows(stacked, rows);
  ASSERT_EQ(sel.shape(), (Shape{3, 2, 3, 3}));
  EXPECT_EQ(0, std::memcmp(sel.raw(), c.raw(), c.numel() * sizeof(float)));
  EXPECT_EQ(0, std::memcmp(sel.raw() + c.numel(), a.raw(),
                           a.numel() * sizeof(float)));
  EXPECT_EQ(0, std::memcmp(sel.raw() + 2 * c.numel(), c.raw(),
                           c.numel() * sizeof(float)));
}

TEST(BatchRows, RejectsMismatchedAndOutOfRange) {
  util::Rng rng{12};
  const Tensor a = Tensor::uniform({2, 3, 3}, -1, 1, rng);
  const Tensor bad = Tensor::uniform({3, 3, 3}, -1, 1, rng);
  const Tensor* mismatched[] = {&a, &bad};
  EXPECT_THROW((void)stack_rows(mismatched), std::invalid_argument);
  EXPECT_THROW((void)stack_rows({}), std::invalid_argument);
  const std::size_t rows[] = {2};
  EXPECT_THROW((void)select_rows(a, rows), std::out_of_range);
}

}  // namespace
}  // namespace einet::nn
