#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numbers>

#include "core/time_distribution.hpp"

namespace einet::core {
namespace {

// ---- Shared properties, parameterised over every distribution kind. -------

struct DistCase {
  std::string label;
  std::function<std::unique_ptr<TimeDistribution>(double)> make;
};

class TimeDistributionProperties
    : public ::testing::TestWithParam<DistCase> {};

TEST_P(TimeDistributionProperties, CdfIsMonotoneWithCorrectEndpoints) {
  const double horizon = 10.0;
  const auto dist = GetParam().make(horizon);
  EXPECT_DOUBLE_EQ(dist->cdf(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(dist->cdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(dist->cdf(horizon), 1.0);
  EXPECT_DOUBLE_EQ(dist->cdf(horizon + 5.0), 1.0);
  double prev = 0.0;
  for (double t = 0.0; t <= horizon; t += 0.1) {
    const double c = dist->cdf(t);
    EXPECT_GE(c, prev - 1e-12) << "at t=" << t;
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
    prev = c;
  }
}

TEST_P(TimeDistributionProperties, SamplesStayInSupport) {
  const double horizon = 7.0;
  const auto dist = GetParam().make(horizon);
  util::Rng rng{11};
  for (int i = 0; i < 5000; ++i) {
    const double t = dist->sample(rng);
    EXPECT_GE(t, 0.0);
    EXPECT_LE(t, horizon);
  }
}

TEST_P(TimeDistributionProperties, EmpiricalCdfMatchesAnalytic) {
  const double horizon = 5.0;
  const auto dist = GetParam().make(horizon);
  util::Rng rng{13};
  const int n = 40000;
  for (double t : {1.0, 2.5, 4.0}) {
    int below = 0;
    util::Rng r2{13};
    for (int i = 0; i < n; ++i)
      if (dist->sample(r2) <= t) ++below;
    EXPECT_NEAR(static_cast<double>(below) / n, dist->cdf(t), 0.02)
        << GetParam().label << " at t=" << t;
  }
  (void)rng;
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, TimeDistributionProperties,
    ::testing::Values(
        DistCase{"uniform",
                 [](double h) { return make_distribution("uniform", h); }},
        DistCase{"gauss05",
                 [](double h) { return make_distribution("gauss0.5", h); }},
        DistCase{"gauss10",
                 [](double h) { return make_distribution("gauss1.0", h); }},
        DistCase{"piecewise",
                 [](double h) -> std::unique_ptr<TimeDistribution> {
                   return std::make_unique<PiecewiseLinearExitDistribution>(
                       std::vector<PiecewiseLinearExitDistribution::Knot>{
                           {0.0, 0.0}, {h * 0.3, 0.6}, {h, 1.0}},
                       h);
                 }},
        DistCase{"trace",
                 [](double h) -> std::unique_ptr<TimeDistribution> {
                   std::vector<double> times;
                   for (int i = 0; i < 200; ++i)
                     times.push_back(h * (i % 17 + 1) / 18.0);
                   return std::make_unique<TraceExitDistribution>(times, h);
                 }},
        DistCase{"empirical",
                 [](double h) -> std::unique_ptr<TimeDistribution> {
                   // Ramp-shaped histogram incl. an interior zero bin.
                   return std::make_unique<EmpiricalExitDistribution>(
                       std::vector<double>{1.0, 2.0, 0.0, 4.0, 3.0}, h);
                 }}),
    [](const auto& info) { return info.param.label; });

// ---- Kind-specific behaviour. ---------------------------------------------

TEST(UniformExit, CdfIsLinear) {
  UniformExitDistribution d{4.0};
  EXPECT_DOUBLE_EQ(d.cdf(1.0), 0.25);
  EXPECT_DOUBLE_EQ(d.cdf(3.0), 0.75);
  EXPECT_DOUBLE_EQ(d.horizon_ms(), 4.0);
}

TEST(UniformExit, RejectsNonPositiveHorizon) {
  EXPECT_THROW(UniformExitDistribution{0.0}, std::invalid_argument);
  EXPECT_THROW(UniformExitDistribution{-1.0}, std::invalid_argument);
}

TEST(TruncatedGaussian, MassConcentratesAroundMean) {
  TruncatedGaussianExitDistribution d{5.0, 1.0, 10.0};
  // Central mass is larger than the tails.
  EXPECT_GT(d.cdf(6.0) - d.cdf(4.0), d.cdf(2.0) - d.cdf(0.0));
  EXPECT_GT(d.cdf(6.0) - d.cdf(4.0), d.cdf(10.0) - d.cdf(8.0));
}

TEST(TruncatedGaussian, WiderSigmaIsFlatter) {
  TruncatedGaussianExitDistribution narrow{5.0, 1.0, 10.0};
  TruncatedGaussianExitDistribution wide{5.0, 10.0, 10.0};
  const double mass_narrow = narrow.cdf(6.0) - narrow.cdf(4.0);
  const double mass_wide = wide.cdf(6.0) - wide.cdf(4.0);
  EXPECT_GT(mass_narrow, mass_wide);
}

TEST(TruncatedGaussian, RejectsBadParameters) {
  EXPECT_THROW((TruncatedGaussianExitDistribution{1.0, 0.0, 5.0}),
               std::invalid_argument);
  // Mean far outside the horizon with a tiny sigma leaves no usable mass.
  EXPECT_THROW((TruncatedGaussianExitDistribution{1e9, 1e-3, 5.0}),
               std::invalid_argument);
}

TEST(TraceExit, EmpiricalCdfSteps) {
  TraceExitDistribution d{{1.0, 2.0, 3.0, 4.0}, 10.0};
  EXPECT_DOUBLE_EQ(d.cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf(1.0), 0.25);
  EXPECT_DOUBLE_EQ(d.cdf(2.5), 0.5);
  EXPECT_DOUBLE_EQ(d.cdf(4.0), 1.0);
  EXPECT_EQ(d.trace_size(), 4u);
}

TEST(TraceExit, ClampsToHorizonAndSamplesFromTrace) {
  TraceExitDistribution d{{50.0, 2.0}, 10.0};
  util::Rng rng{3};
  for (int i = 0; i < 100; ++i) {
    const double t = d.sample(rng);
    EXPECT_TRUE(t == 2.0 || t == 10.0);
  }
}

TEST(TraceExit, RejectsEmptyTrace) {
  EXPECT_THROW((TraceExitDistribution{{}, 5.0}), std::invalid_argument);
}

TEST(TraceExit, AllEventsBeyondHorizonCollapseToHorizonAtom) {
  // Every raw event clamps to the horizon: the trace degenerates to a point
  // mass at t = horizon, with zero mass strictly inside.
  TraceExitDistribution d{{12.0, 99.0, 1e6}, 10.0};
  EXPECT_DOUBLE_EQ(d.cdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf(9.999), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf(10.0), 1.0);
  util::Rng rng{17};
  for (int i = 0; i < 50; ++i) EXPECT_DOUBLE_EQ(d.sample(rng), 10.0);
}

TEST(TraceExit, DuplicateEventsWeightTheStep) {
  // Three copies of t=2 next to one t=8: the CDF steps by 3/4 at 2.
  TraceExitDistribution d{{2.0, 2.0, 2.0, 8.0}, 10.0};
  EXPECT_DOUBLE_EQ(d.cdf(1.999), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf(2.0), 0.75);
  EXPECT_DOUBLE_EQ(d.cdf(7.999), 0.75);
  EXPECT_DOUBLE_EQ(d.cdf(8.0), 1.0);
}

TEST(TraceExit, NegativeEventsClampToZero) {
  TraceExitDistribution d{{-5.0, -1.0, 4.0}, 10.0};
  // Two events clamp to an atom at 0; the step is visible just above 0.
  EXPECT_DOUBLE_EQ(d.cdf(0.0), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(d.cdf(4.0), 1.0);
}

TEST(TruncatedGaussian, TailMassNormalisationMatchesAnalytic) {
  // cdf must equal (Phi((t-mu)/sigma) - Phi((0-mu)/sigma)) / (Phi((h-mu)/
  // sigma) - Phi((0-mu)/sigma)); with mu outside the window the truncation
  // renormalises a thin tail, where an implementation that forgot the
  // lo/hi-mass division would be badly wrong.
  const double mu = -2.0, sigma = 3.0, h = 6.0;
  TruncatedGaussianExitDistribution d{mu, sigma, h};
  const auto phi = [](double z) {
    return 0.5 * std::erfc(-z / std::numbers::sqrt2);
  };
  const double lo = phi((0.0 - mu) / sigma);
  const double hi = phi((h - mu) / sigma);
  for (double t : {0.5, 1.0, 2.0, 3.0, 4.5, 5.5}) {
    const double want = (phi((t - mu) / sigma) - lo) / (hi - lo);
    EXPECT_NEAR(d.cdf(t), want, 1e-12) << "t=" << t;
  }
}

TEST(EmpiricalExit, InterpolatesWithinBinsAndHandlesZeroBins) {
  // Bins over [0,10): weights 1,0,1 -> cum 0.5, 0.5, 1.0. The CDF is flat
  // across the empty middle bin and linear inside the others.
  EmpiricalExitDistribution d{{1.0, 0.0, 1.0}, 9.0};
  EXPECT_DOUBLE_EQ(d.cdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf(1.5), 0.25);   // halfway through bin 0
  EXPECT_DOUBLE_EQ(d.cdf(3.0), 0.5);    // bin 0 complete
  EXPECT_DOUBLE_EQ(d.cdf(4.5), 0.5);    // flat across the zero bin
  EXPECT_DOUBLE_EQ(d.cdf(7.5), 0.75);   // halfway through bin 2
  EXPECT_DOUBLE_EQ(d.cdf(9.0), 1.0);
  EXPECT_EQ(d.num_bins(), 3u);
  // Samples never land inside the zero-mass bin's interior.
  util::Rng rng{23};
  for (int i = 0; i < 2000; ++i) {
    const double t = d.sample(rng);
    EXPECT_FALSE(t > 3.0 + 1e-9 && t < 6.0 - 1e-9) << t;
  }
}

TEST(EmpiricalExit, RejectsDegenerateInputs) {
  EXPECT_THROW((EmpiricalExitDistribution{{}, 5.0}), std::invalid_argument);
  EXPECT_THROW((EmpiricalExitDistribution{{0.0, 0.0}, 5.0}),
               std::invalid_argument);
  EXPECT_THROW((EmpiricalExitDistribution{{1.0, -0.5}, 5.0}),
               std::invalid_argument);
  EXPECT_THROW((EmpiricalExitDistribution{{1.0}, 0.0}),
               std::invalid_argument);
}

TEST(Factory, RejectsUnknownKind) {
  EXPECT_THROW(make_distribution("weibull", 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace einet::core
