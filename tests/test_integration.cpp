// Integration tests across the whole pipeline: train -> profile -> predictor
// -> elastic inference, plus the live-vs-replay equivalence guarantee.
#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "models/backbones.hpp"
#include "models/trainer.hpp"
#include "predictor/cs_predictor.hpp"
#include "profiling/platform.hpp"
#include "profiling/profiler.hpp"
#include "runtime/evaluator.hpp"
#include "runtime/live_engine.hpp"

namespace einet {
namespace {

struct Pipeline {
  data::SyntheticDataset ds;
  models::MultiExitNetwork net;
  profiling::ETProfile et;
  profiling::CSProfile cs;

  static Pipeline build() {
    auto spec = data::synth_cifar10_spec(160, 60);
    auto ds = data::make_synthetic(spec);
    util::Rng rng{7};
    auto net = models::make_msdnet(
        models::MsdnetSpec{.blocks = 4, .step = 1, .base = 1, .channel = 6},
        ds.train->input_shape(), ds.train->num_classes(), rng);
    models::MultiExitTrainer trainer{net};
    models::TrainConfig tc;
    tc.epochs = 4;
    tc.batch_size = 20;
    trainer.train(*ds.train, tc);
    auto et = profiling::profile_execution_time(
        net, profiling::edge_fast_platform());
    auto cs = profiling::profile_confidence(net, *ds.test);
    return Pipeline{std::move(ds), std::move(net), std::move(et),
                    std::move(cs)};
  }
};

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { pipeline_ = new Pipeline(Pipeline::build()); }
  static void TearDownTestSuite() {
    delete pipeline_;
    pipeline_ = nullptr;
  }
  static Pipeline* pipeline_;
};

Pipeline* PipelineTest::pipeline_ = nullptr;

TEST_F(PipelineTest, ProfilesAreConsistentWithNetwork) {
  auto& p = *pipeline_;
  EXPECT_EQ(p.et.num_blocks(), p.net.num_exits());
  EXPECT_EQ(p.cs.num_exits, p.net.num_exits());
  EXPECT_EQ(p.cs.size(), p.ds.test->size());
  // ET times must mirror the flops cost model ordering.
  for (std::size_t i = 0; i < p.net.num_exits(); ++i) {
    EXPECT_GT(p.et.conv_ms[i], 0.0);
    EXPECT_GT(p.et.branch_ms[i], 0.0);
  }
}

TEST_F(PipelineTest, CsProfileMatchesDirectForward) {
  auto& p = *pipeline_;
  // Recompute exit 0 and the deepest exit's confidence for sample 0.
  const auto& sample = p.ds.test->sample(0);
  const nn::Shape img = p.ds.test->input_shape();
  nn::Tensor features = sample.image.reshaped({1, img[0], img[1], img[2]});
  for (std::size_t i = 0; i < p.net.num_exits(); ++i) {
    features = p.net.run_conv_part(i, features);
    const nn::Tensor logits = p.net.run_branch(i, features);
    const auto probs =
        nn::softmax(std::span<const float>{logits.raw(), logits.numel()});
    const std::size_t pred = nn::span_argmax(probs);
    EXPECT_NEAR(p.cs.records[0].confidence[i], probs[pred], 1e-4f);
    EXPECT_EQ(p.cs.records[0].correct[i] != 0, pred == sample.label);
  }
}

TEST_F(PipelineTest, LiveAndReplayEnginesAgree) {
  auto& p = *pipeline_;
  predictor::CSPredictorConfig pc;
  pc.hidden = 32;
  pc.epochs = 8;
  predictor::CSPredictor pred{p.net.num_exits(), pc};
  pred.train(p.cs);

  runtime::ElasticConfig cfg;
  runtime::ElasticEngine replay{p.et, &pred, cfg};
  runtime::LiveElasticEngine live{p.net, p.et, &pred, cfg};
  core::UniformExitDistribution dist{p.et.total_ms()};

  util::Rng rng{99};
  for (std::size_t s = 0; s < 10; ++s) {
    const double deadline = dist.sample(rng);
    const auto r = replay.run(p.cs.records[s], deadline, dist);
    const auto l =
        live.run(p.ds.test->sample(s).image, p.ds.test->sample(s).label,
                 deadline, dist);
    EXPECT_EQ(r.has_result, l.has_result) << "sample " << s;
    if (r.has_result) {
      EXPECT_EQ(r.exit_index, l.exit_index) << "sample " << s;
      EXPECT_EQ(r.correct, l.correct) << "sample " << s;
      EXPECT_NEAR(r.result_time_ms, l.result_time_ms, 1e-9) << "sample " << s;
    }
    EXPECT_EQ(r.branches_executed, l.branches_executed) << "sample " << s;
    EXPECT_EQ(r.completed, l.completed) << "sample " << s;
  }
}

TEST_F(PipelineTest, EinetBeatsHundredPercentStaticOnAverage) {
  auto& p = *pipeline_;
  predictor::CSPredictorConfig pc;
  pc.hidden = 32;
  pc.epochs = 20;
  predictor::CSPredictor pred{p.net.num_exits(), pc};
  pred.train(p.cs);

  core::UniformExitDistribution dist{p.et.total_ms()};
  runtime::Evaluator ev{p.et, p.cs, dist};
  runtime::ElasticConfig cfg;
  const auto einet = ev.eval_einet(&pred, cfg, 10);
  const auto full =
      ev.eval_static(core::ExitPlan{p.net.num_exits(), true}, "100%", 10);
  // The paper's headline: the planner improves on the no-skip multi-exit
  // baseline. Allow slack for the small scale of this test.
  EXPECT_GE(einet.accuracy, full.accuracy - 0.03);
}

TEST_F(PipelineTest, DifferentPlatformsChangeEtProfilesOnly) {
  auto& p = *pipeline_;
  const auto slow = profiling::profile_execution_time(
      p.net, profiling::edge_slow_platform());
  EXPECT_GT(slow.total_ms(), p.et.total_ms());
  // CS-profiles are platform independent by construction: regenerating the
  // confidence profile gives identical records.
  auto cs2 = profiling::profile_confidence(p.net, *p.ds.test);
  ASSERT_EQ(cs2.size(), p.cs.size());
  for (std::size_t s = 0; s < cs2.size(); ++s)
    for (std::size_t e = 0; e < cs2.num_exits; ++e)
      EXPECT_EQ(cs2.records[s].confidence[e], p.cs.records[s].confidence[e]);
}

TEST_F(PipelineTest, WallclockProfilerProducesPlausibleTimes) {
  auto& p = *pipeline_;
  const auto times =
      profiling::measure_block_times_wallclock(p.net, *p.ds.test, 3);
  ASSERT_EQ(times.size(), p.net.num_exits());
  for (const auto& block : times) {
    ASSERT_EQ(block.size(), 3u);
    for (double t : block) EXPECT_GT(t, 0.0);
  }
}

}  // namespace
}  // namespace einet
