#include <gtest/gtest.h>

#include <cmath>

#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "test_util.hpp"

namespace einet::nn {
namespace {

TEST(SoftmaxCrossEntropy, UniformLogitsGiveLogC) {
  Tensor logits{{2, 4}};  // all zeros -> uniform softmax
  const std::size_t labels[] = {0, 3};
  const auto res = softmax_cross_entropy(logits, labels);
  EXPECT_NEAR(res.loss, std::log(4.0f), 1e-5);
}

TEST(SoftmaxCrossEntropy, GradientMatchesNumeric) {
  util::Rng rng{1};
  Tensor logits = Tensor::uniform({3, 5}, -2, 2, rng);
  const std::size_t labels[] = {1, 4, 0};
  const auto res = softmax_cross_entropy(logits, labels);
  const float eps = 1e-2f;
  for (std::size_t i = 0; i < logits.numel(); ++i) {
    Tensor lp = logits, lm = logits;
    lp[i] += eps;
    lm[i] -= eps;
    const float num = (softmax_cross_entropy(lp, labels).loss -
                       softmax_cross_entropy(lm, labels).loss) /
                      (2 * eps);
    EXPECT_LT(einet::testing::rel_err(res.grad[i], num), 0.05) << "at " << i;
  }
}

TEST(SoftmaxCrossEntropy, GradientSumsToZeroPerRow) {
  util::Rng rng{2};
  Tensor logits = Tensor::uniform({2, 6}, -1, 1, rng);
  const std::size_t labels[] = {3, 5};
  const auto res = softmax_cross_entropy(logits, labels);
  for (std::size_t r = 0; r < 2; ++r) {
    float row = 0.0f;
    for (std::size_t c = 0; c < 6; ++c) row += res.grad[r * 6 + c];
    EXPECT_NEAR(row, 0.0f, 1e-6);
  }
}

TEST(SoftmaxCrossEntropy, ValidatesInputs) {
  Tensor logits{{2, 3}};
  const std::size_t bad_count[] = {0};
  EXPECT_THROW(softmax_cross_entropy(logits, bad_count),
               std::invalid_argument);
  const std::size_t bad_label[] = {0, 7};
  EXPECT_THROW(softmax_cross_entropy(logits, bad_label),
               std::invalid_argument);
}

TEST(Mse, ZeroForIdenticalInputs) {
  Tensor a{{3}, {1, 2, 3}};
  EXPECT_EQ(mse(a, a).loss, 0.0f);
}

TEST(Mse, KnownValueAndGrad) {
  Tensor pred{{2}, {1.0f, 3.0f}};
  Tensor target{{2}, {0.0f, 1.0f}};
  const auto res = mse(pred, target);
  EXPECT_FLOAT_EQ(res.loss, (1.0f + 4.0f) / 2.0f);
  EXPECT_FLOAT_EQ(res.grad[0], 2.0f * 1.0f / 2.0f);
  EXPECT_FLOAT_EQ(res.grad[1], 2.0f * 2.0f / 2.0f);
}

TEST(MaskedMse, OnlyMaskedElementsContribute) {
  // Paper Eq. 3: executed exits (mask 0) must not contribute.
  Tensor pred{{4}, {1, 2, 3, 4}};
  Tensor target{{4}, {0, 0, 0, 0}};
  Tensor mask{{4}, {0, 0, 1, 1}};
  const auto res = masked_mse(pred, target, mask);
  EXPECT_FLOAT_EQ(res.loss, (9.0f + 16.0f) / 2.0f);
  EXPECT_EQ(res.grad[0], 0.0f);
  EXPECT_EQ(res.grad[1], 0.0f);
  EXPECT_FLOAT_EQ(res.grad[2], 2.0f * 3.0f / 2.0f);
}

TEST(MaskedMse, AllMaskedOffGivesZero) {
  Tensor pred{{3}, {1, 2, 3}};
  Tensor target{{3}};
  Tensor mask{{3}};
  const auto res = masked_mse(pred, target, mask);
  EXPECT_EQ(res.loss, 0.0f);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(res.grad[i], 0.0f);
}

TEST(Accuracy, CountsTop1Matches) {
  Tensor logits{{2, 3}, {0.1f, 0.9f, 0.0f, 0.8f, 0.1f, 0.1f}};
  const std::size_t labels[] = {1, 2};
  EXPECT_DOUBLE_EQ(accuracy(logits, labels), 0.5);
}

TEST(Sgd, SimpleStepWithoutMomentum) {
  Param p{"w", Tensor{{1}, {1.0f}}};
  p.grad[0] = 2.0f;
  Sgd opt{{&p}, SgdConfig{.lr = 0.1f, .momentum = 0.0f}};
  opt.step();
  EXPECT_NEAR(p.value[0], 1.0f - 0.1f * 2.0f, 1e-6);
}

TEST(Sgd, MomentumAccumulates) {
  Param p{"w", Tensor{{1}, {0.0f}}};
  Sgd opt{{&p}, SgdConfig{.lr = 1.0f, .momentum = 0.5f}};
  p.grad[0] = 1.0f;
  opt.step();  // v = 1, w = -1
  EXPECT_NEAR(p.value[0], -1.0f, 1e-6);
  opt.step();  // v = 0.5 + 1 = 1.5, w = -2.5
  EXPECT_NEAR(p.value[0], -2.5f, 1e-6);
}

TEST(Sgd, WeightDecayPullsTowardZero) {
  Param p{"w", Tensor{{1}, {10.0f}}};
  Sgd opt{{&p}, SgdConfig{.lr = 0.1f, .momentum = 0.0f, .weight_decay = 1.0f}};
  p.grad[0] = 0.0f;
  opt.step();
  EXPECT_NEAR(p.value[0], 10.0f - 0.1f * 10.0f, 1e-5);
}

TEST(Sgd, ClipNormBoundsUpdate) {
  Param p{"w", Tensor{{2}, {0.0f, 0.0f}}};
  Sgd opt{{&p},
          SgdConfig{.lr = 1.0f, .momentum = 0.0f, .clip_norm = 1.0f}};
  p.grad[0] = 3.0f;
  p.grad[1] = 4.0f;  // norm 5 -> scaled by 1/5
  opt.step();
  EXPECT_NEAR(p.value[0], -0.6f, 1e-5);
  EXPECT_NEAR(p.value[1], -0.8f, 1e-5);
}

TEST(Sgd, GradNormComputed) {
  Param p{"w", Tensor{{2}, {0.0f, 0.0f}}};
  p.grad[0] = 3.0f;
  p.grad[1] = 4.0f;
  Sgd opt{{&p}, SgdConfig{}};
  EXPECT_NEAR(opt.grad_norm(), 5.0f, 1e-5);
}

TEST(Sgd, RejectsBadConfig) {
  Param p{"w", Tensor{{1}}};
  EXPECT_THROW((Sgd{{&p}, SgdConfig{.lr = 0.0f}}), std::invalid_argument);
  EXPECT_THROW((Sgd{{&p}, SgdConfig{.lr = 0.1f, .momentum = 1.0f}}),
               std::invalid_argument);
  EXPECT_THROW((Sgd{{nullptr}, SgdConfig{}}), std::invalid_argument);
}

TEST(Sgd, TrainsLinearRegressionToConvergence) {
  // y = 2x - 1 learned by a 1x1 Linear layer.
  util::Rng rng{5};
  Linear model{1, 1, rng};
  Sgd opt{model.params(), SgdConfig{.lr = 0.05f, .momentum = 0.9f}};
  for (int step = 0; step < 500; ++step) {
    Tensor x = Tensor::uniform({8, 1}, -1, 1, rng);
    Tensor target{{8, 1}};
    for (std::size_t i = 0; i < 8; ++i) target[i] = 2.0f * x[i] - 1.0f;
    opt.zero_grad();
    const Tensor pred = model.forward(x, true);
    const auto res = mse(pred, target);
    model.backward(res.grad);
    opt.step();
  }
  EXPECT_NEAR(model.weight().value[0], 2.0f, 0.05f);
  EXPECT_NEAR(model.bias().value[0], -1.0f, 0.05f);
}

TEST(Adam, SimpleQuadraticConverges) {
  // Minimise (w - 3)^2 by gradient descent on w.
  Param p{"w", Tensor{{1}, {0.0f}}};
  Adam opt{{&p}, AdamConfig{.lr = 0.05f}};
  for (int i = 0; i < 400; ++i) {
    opt.zero_grad();
    p.grad[0] = 2.0f * (p.value[0] - 3.0f);
    opt.step();
  }
  EXPECT_NEAR(p.value[0], 3.0f, 0.05f);
}

TEST(Adam, FirstStepIsLearningRateSized) {
  // With bias correction the very first Adam update is ~lr * sign(grad).
  Param p{"w", Tensor{{1}, {0.0f}}};
  Adam opt{{&p}, AdamConfig{.lr = 0.1f}};
  p.grad[0] = 42.0f;
  opt.step();
  EXPECT_NEAR(p.value[0], -0.1f, 1e-3f);
}

TEST(Adam, RejectsBadConfig) {
  Param p{"w", Tensor{{1}}};
  EXPECT_THROW((Adam{{&p}, AdamConfig{.lr = 0.0f}}), std::invalid_argument);
  EXPECT_THROW((Adam{{&p}, AdamConfig{.lr = 0.1f, .beta1 = 1.0f}}),
               std::invalid_argument);
  EXPECT_THROW((Adam{{nullptr}, AdamConfig{}}), std::invalid_argument);
}

TEST(Adam, ClipNormBoundsUpdateDirection) {
  Param p{"w", Tensor{{2}, {0.0f, 0.0f}}};
  Adam opt{{&p}, AdamConfig{.lr = 1.0f, .clip_norm = 1.0f}};
  p.grad[0] = 300.0f;
  p.grad[1] = 400.0f;
  opt.step();
  // Clipping rescales the gradient before the moment updates; both entries
  // move, and per-coordinate Adam steps stay ~lr-sized.
  EXPECT_LT(p.value[0], 0.0f);
  EXPECT_LT(p.value[1], 0.0f);
  EXPECT_NEAR(p.value[0], -1.0f, 0.05f);
}

TEST(Adam, TrainsLinearRegressionToConvergence) {
  util::Rng rng{7};
  Linear model{1, 1, rng};
  Adam opt{model.params(), AdamConfig{.lr = 0.05f}};
  for (int step = 0; step < 400; ++step) {
    Tensor x = Tensor::uniform({8, 1}, -1, 1, rng);
    Tensor target{{8, 1}};
    for (std::size_t i = 0; i < 8; ++i) target[i] = 2.0f * x[i] - 1.0f;
    opt.zero_grad();
    const Tensor pred = model.forward(x, true);
    const auto res = mse(pred, target);
    model.backward(res.grad);
    opt.step();
  }
  EXPECT_NEAR(model.weight().value[0], 2.0f, 0.05f);
  EXPECT_NEAR(model.bias().value[0], -1.0f, 0.05f);
}

}  // namespace
}  // namespace einet::nn
