#include <gtest/gtest.h>

#include "profiling/calibration.hpp"
#include "profiling/platform.hpp"
#include "profiling/profiles.hpp"

namespace einet::profiling {
namespace {

ETProfile sample_et() {
  ETProfile p;
  p.model_name = "toy";
  p.platform_name = "edge";
  p.conv_ms = {1.0, 2.0, 3.0};
  p.branch_ms = {0.5, 0.5, 0.5};
  return p;
}

CSProfile sample_cs() {
  CSProfile p;
  p.model_name = "toy";
  p.dataset_name = "synth";
  p.num_exits = 3;
  p.records.push_back({{0.3f, 0.6f, 0.9f}, {0, 1, 1}, 2});
  p.records.push_back({{0.5f, 0.5f, 0.7f}, {1, 0, 1}, 0});
  return p;
}

TEST(ETProfile, Totals) {
  const auto p = sample_et();
  EXPECT_DOUBLE_EQ(p.total_ms(), 7.5);
  EXPECT_DOUBLE_EQ(p.trunk_ms(), 6.0);
  EXPECT_EQ(p.num_blocks(), 3u);
}

TEST(ETProfile, ValidateCatchesErrors) {
  auto p = sample_et();
  p.branch_ms.pop_back();
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = sample_et();
  p.conv_ms[1] = -1.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = ETProfile{};
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(ETProfile, CsvRoundTrip) {
  const auto p = sample_et();
  const auto q = ETProfile::from_csv(p.to_csv());
  EXPECT_EQ(q.model_name, "toy");
  EXPECT_EQ(q.platform_name, "edge");
  EXPECT_EQ(q.conv_ms, p.conv_ms);
  EXPECT_EQ(q.branch_ms, p.branch_ms);
}

TEST(ETProfile, FromCsvRejectsGarbage) {
  EXPECT_THROW(ETProfile::from_csv("nonsense"), std::runtime_error);
  EXPECT_THROW(ETProfile::from_csv("model,x\nwrong"), std::runtime_error);
}

TEST(ETProfile, FileRoundTrip) {
  const auto p = sample_et();
  const std::string path = ::testing::TempDir() + "/et.csv";
  p.save(path);
  const auto q = ETProfile::load(path);
  EXPECT_EQ(q.conv_ms, p.conv_ms);
}

TEST(CSProfile, Aggregates) {
  const auto p = sample_cs();
  const auto conf = p.mean_confidence();
  EXPECT_NEAR(conf[0], 0.4, 1e-6);
  EXPECT_NEAR(conf[2], 0.8, 1e-6);
  const auto acc = p.exit_accuracy();
  EXPECT_NEAR(acc[0], 0.5, 1e-6);
  EXPECT_NEAR(acc[1], 0.5, 1e-6);
  EXPECT_NEAR(acc[2], 1.0, 1e-6);
}

TEST(CSProfile, ValidateCatchesErrors) {
  auto p = sample_cs();
  p.records[0].confidence.pop_back();
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = sample_cs();
  p.records[1].confidence[0] = 1.5f;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = sample_cs();
  p.num_exits = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(CSProfile, CsvRoundTrip) {
  const auto p = sample_cs();
  const auto q = CSProfile::from_csv(p.to_csv());
  EXPECT_EQ(q.num_exits, 3u);
  ASSERT_EQ(q.records.size(), 2u);
  EXPECT_EQ(q.records[0].label, 2u);
  EXPECT_NEAR(q.records[0].confidence[1], 0.6f, 1e-6);
  EXPECT_EQ(q.records[1].correct[1], 0);
}

TEST(Platform, TimeScalesWithFlops) {
  Platform p{.name = "t", .flops_per_ms = 1000.0, .conv_overhead_ms = 0.5};
  EXPECT_DOUBLE_EQ(p.time_ms(2000, p.conv_overhead_ms), 0.5 + 2.0);
}

TEST(Platform, MeasureJittersAroundTruth) {
  Platform p = edge_fast_platform();
  util::Rng rng{1};
  const double truth = p.time_ms(1000000, p.conv_overhead_ms);
  double acc = 0.0;
  const int n = 2000;
  for (int i = 0; i < n; ++i)
    acc += p.measure_ms(1000000, p.conv_overhead_ms, rng);
  EXPECT_NEAR(acc / n, truth, truth * 0.01);
}

TEST(Platform, PresetsAreOrderedBySpeed) {
  EXPECT_GT(server_platform().flops_per_ms,
            edge_fast_platform().flops_per_ms);
  EXPECT_GT(edge_fast_platform().flops_per_ms,
            edge_slow_platform().flops_per_ms);
}

TEST(Calibrator, MapsConfidenceTowardAccuracy) {
  // Overconfident profile: conf 0.9 but only 50% correct.
  CSProfile p;
  p.model_name = "toy";
  p.dataset_name = "d";
  p.num_exits = 1;
  util::Rng rng{3};
  for (int i = 0; i < 400; ++i) {
    const float conf = 0.85f + 0.1f * rng.uniform_f(0.0f, 1.0f);
    p.records.push_back({{conf}, {static_cast<std::uint8_t>(i % 2)}, 0});
  }
  const auto cal = ConfidenceCalibrator::fit(p, 8);
  EXPECT_NEAR(cal.calibrate(0, 0.9f), 0.5f, 0.1f);
}

TEST(Calibrator, WellCalibratedProfileIsNearIdentity) {
  CSProfile p;
  p.model_name = "toy";
  p.dataset_name = "d";
  p.num_exits = 1;
  util::Rng rng{4};
  for (int i = 0; i < 4000; ++i) {
    const float conf = rng.uniform_f(0.05f, 0.95f);
    p.records.push_back(
        {{conf}, {static_cast<std::uint8_t>(rng.bernoulli(conf))}, 0});
  }
  const auto cal = ConfidenceCalibrator::fit(p, 10);
  for (float c : {0.2f, 0.5f, 0.8f})
    EXPECT_NEAR(cal.calibrate(0, c), c, 0.08f);
}

TEST(Calibrator, ApplyCalibratesWholeVector) {
  const auto cs = sample_cs();
  // Too few samples for the default 10 bins.
  EXPECT_THROW(ConfidenceCalibrator::fit(cs, 10), std::invalid_argument);
  const auto cal = ConfidenceCalibrator::fit(cs, 2);
  std::vector<float> conf{0.4f, 0.5f, 0.8f};
  cal.apply(conf);
  for (float c : conf) {
    EXPECT_GE(c, 0.0f);
    EXPECT_LE(c, 1.0f);
  }
  std::vector<float> wrong_size{0.4f};
  EXPECT_THROW(cal.apply(wrong_size), std::invalid_argument);
}

}  // namespace
}  // namespace einet::profiling
