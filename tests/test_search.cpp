#include <gtest/gtest.h>

#include "core/search.hpp"

namespace einet::core {
namespace {

/// Random planning problem over n exits.
struct ProblemFixture {
  std::vector<double> conv;
  std::vector<double> branch;
  std::vector<float> conf;
  std::unique_ptr<TimeDistribution> dist;

  explicit ProblemFixture(std::size_t n, std::uint64_t seed,
                          const std::string& kind = "uniform") {
    util::Rng rng{seed};
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      conv.push_back(rng.uniform(0.1, 1.0));
      branch.push_back(rng.uniform(0.05, 0.8));
      // Confidence loosely rises with depth, like a trained model's.
      conf.push_back(static_cast<float>(
          std::clamp(0.2 + 0.7 * static_cast<double>(i) /
                               static_cast<double>(n) +
                         rng.uniform(-0.1, 0.1),
                     0.0, 1.0)));
      total += conv.back() + branch.back();
    }
    dist = make_distribution(kind, total);
  }

  [[nodiscard]] PlanProblem problem(std::size_t fixed_prefix = 0,
                                    ExitPlan base = {}) const {
    if (base.empty()) base = ExitPlan{conv.size()};
    return PlanProblem{.conv_ms = conv,
                       .branch_ms = branch,
                       .confidence = conf,
                       .dist = dist.get(),
                       .fixed_prefix = fixed_prefix,
                       .base = std::move(base)};
  }
};

TEST(EnumerationSearch, FindsTheGlobalOptimum) {
  ProblemFixture f{8, 42};
  const auto best = enumeration_search(f.problem());
  EXPECT_EQ(best.plans_evaluated, 256u);
  // Cross-check against a manual scan.
  double manual_best = -1.0;
  for (std::size_t mask = 0; mask < 256; ++mask) {
    ExitPlan p{8};
    for (std::size_t b = 0; b < 8; ++b) p.set(b, (mask >> b) & 1);
    manual_best = std::max(
        manual_best,
        accuracy_expectation(p, f.conv, f.branch, f.conf, *f.dist));
  }
  EXPECT_DOUBLE_EQ(best.expectation, manual_best);
}

TEST(EnumerationSearch, ThrowsOnHugeSuffix) {
  ProblemFixture f{30, 1};
  EXPECT_THROW(enumeration_search(f.problem()), std::invalid_argument);
}

TEST(GreedySearch, NeverWorseThanAllOnesOrAllZeros) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    ProblemFixture f{12, seed};
    const auto res = greedy_search(f.problem());
    const double all_ones = accuracy_expectation(
        ExitPlan{12, true}, f.conv, f.branch, f.conf, *f.dist);
    EXPECT_GE(res.expectation, all_ones - 1e-12);
    EXPECT_GE(res.expectation, 0.0);
  }
}

TEST(HybridSearch, MatchesEnumerationOnSmallModels) {
  // With m >= n the enumeration stage covers the entire space.
  for (std::uint64_t seed : {7u, 8u, 9u}) {
    ProblemFixture f{6, seed};
    const auto enumed = enumeration_search(f.problem());
    const auto hybrid = hybrid_search(f.problem(), 6);
    EXPECT_NEAR(hybrid.expectation, enumed.expectation, 1e-12);
  }
}

TEST(HybridSearch, AtLeastAsGoodAsGreedy) {
  for (std::uint64_t seed : {11u, 12u, 13u, 14u}) {
    ProblemFixture f{16, seed};
    const auto greedy = greedy_search(f.problem());
    const auto hybrid = hybrid_search(f.problem(), 4);
    // Hybrid grows both the enumeration winner and the pure-greedy
    // trajectory, so it can never do worse than greedy.
    EXPECT_GE(hybrid.expectation, greedy.expectation - 1e-12);
  }
}

TEST(HybridSearch, MoreEnumerationNeverHurtsMuch) {
  ProblemFixture f{20, 21};
  double prev = -1.0;
  for (std::size_t m : {0u, 2u, 4u, 6u}) {
    const auto res = hybrid_search(f.problem(), m);
    EXPECT_GE(res.expectation, 0.0);
    // Larger m explores a superset of prefix assignments; allow small
    // non-monotonicity because the greedy trajectories differ.
    EXPECT_GE(res.expectation, prev - 5e-2);
    prev = res.expectation;
  }
}

TEST(HybridSearch, RejectsOversizedEnumStage) {
  ProblemFixture f{30, 2};
  EXPECT_THROW(hybrid_search(f.problem(), 25), std::invalid_argument);
}

TEST(RandomSearch, ImprovesWithBudget) {
  ProblemFixture f{20, 31};
  util::Rng rng{1};
  const auto small = random_search(f.problem(), 10, rng);
  util::Rng rng2{1};
  const auto big = random_search(f.problem(), 2000, rng2);
  EXPECT_GE(big.expectation, small.expectation);
  EXPECT_EQ(big.plans_evaluated, 2000u);
}

TEST(RandomSearch, RejectsZeroBudget) {
  ProblemFixture f{4, 1};
  util::Rng rng{1};
  EXPECT_THROW(random_search(f.problem(), 0, rng), std::invalid_argument);
}

TEST(Search, FrozenPrefixIsRespected) {
  ProblemFixture f{10, 51};
  ExitPlan base{10};
  base.set(0, true);
  base.set(2, true);  // history: executed exits 0 and 2, skipped 1 and 3
  const std::size_t prefix = 4;
  for (auto searcher : {+[](const PlanProblem& p) { return greedy_search(p); },
                        +[](const PlanProblem& p) {
                          return hybrid_search(p, 3);
                        },
                        +[](const PlanProblem& p) {
                          return enumeration_search(p);
                        }}) {
    const auto res = searcher(f.problem(prefix, base));
    for (std::size_t i = 0; i < prefix; ++i)
      EXPECT_EQ(res.plan.executes(i), base.executes(i))
          << "prefix bit " << i << " was mutated";
  }
}

TEST(Search, FullyFrozenProblemReturnsBase) {
  ProblemFixture f{6, 61};
  ExitPlan base{6};
  base.set(1, true);
  base.set(5, true);
  const auto res = greedy_search(f.problem(6, base));
  EXPECT_EQ(res.plan, base);
}

TEST(PlanProblem, ValidateCatchesErrors) {
  ProblemFixture f{4, 71};
  PlanProblem p = f.problem();
  p.dist = nullptr;
  EXPECT_THROW(p.validate(), std::invalid_argument);

  PlanProblem q = f.problem();
  q.fixed_prefix = 10;
  EXPECT_THROW(q.validate(), std::invalid_argument);

  PlanProblem r = f.problem(2, ExitPlan{2});  // base size != n
  EXPECT_THROW(r.validate(), std::invalid_argument);
}

TEST(SearchEngine, DispatchesEveryMethod) {
  ProblemFixture f{8, 81};
  for (auto method :
       {SearchMethod::kHybrid, SearchMethod::kGreedy,
        SearchMethod::kEnumeration, SearchMethod::kRandom,
        SearchMethod::kNone}) {
    SearchEngine engine{SearchEngineConfig{.method = method,
                                           .enum_outputs = 3,
                                           .random_plans = 100}};
    const auto res = engine.search(f.problem());
    EXPECT_GE(res.expectation, 0.0) << search_method_name(method);
    if (method == SearchMethod::kNone)
      EXPECT_EQ(res.plan, (ExitPlan{8, true}));
  }
}

TEST(SearchEngine, NoneKeepsFrozenPrefix) {
  ProblemFixture f{6, 91};
  ExitPlan base{6};  // history: everything skipped so far
  SearchEngine engine{SearchEngineConfig{.method = SearchMethod::kNone}};
  const auto res = engine.search(f.problem(3, base));
  for (std::size_t i = 0; i < 3; ++i) EXPECT_FALSE(res.plan.executes(i));
  for (std::size_t i = 3; i < 6; ++i) EXPECT_TRUE(res.plan.executes(i));
}

TEST(SearchMethodName, CoversAllMethods) {
  EXPECT_EQ(search_method_name(SearchMethod::kHybrid), "hybrid");
  EXPECT_EQ(search_method_name(SearchMethod::kGreedy), "greedy");
  EXPECT_EQ(search_method_name(SearchMethod::kEnumeration), "enumeration");
  EXPECT_EQ(search_method_name(SearchMethod::kRandom), "random");
  EXPECT_EQ(search_method_name(SearchMethod::kNone), "baseline");
}

}  // namespace
}  // namespace einet::core
