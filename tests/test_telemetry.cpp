// Telemetry-plane suite (DESIGN.md): SLO monitor window semantics and breach
// lifecycle, Prometheus text rendering, hub composition, flight-recorder
// dumps, the HTTP exposition endpoint over real loopback sockets, and the
// per-stage deadline attribution identities on a live EdgeServer run.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/time_distribution.hpp"
#include "obs/telemetry/flight_recorder.hpp"
#include "obs/telemetry/http.hpp"
#include "obs/telemetry/hub.hpp"
#include "obs/telemetry/prometheus.hpp"
#include "obs/telemetry/slo.hpp"
#include "serving/replicate.hpp"
#include "serving/server.hpp"
#include "serving/telemetry_source.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace einet::obs::telemetry {
namespace {

// --------------------------------------------------------------- SloMonitor

TEST(SloMonitor, CtorValidatesConfig) {
  SloConfig bad_window;
  bad_window.window = 0;
  EXPECT_THROW(SloMonitor{bad_window}, std::invalid_argument);
  SloConfig bad_rate;
  bad_rate.min_hit_rate = 1.5;
  EXPECT_THROW(SloMonitor{bad_rate}, std::invalid_argument);
  SloConfig negative_rate;
  negative_rate.max_shed_rate = -0.1;
  EXPECT_THROW(SloMonitor{negative_rate}, std::invalid_argument);
}

TEST(SloMonitor, DefaultsNeverBreach) {
  SloMonitor slo;  // trivial thresholds
  for (int i = 0; i < 512; ++i) {
    slo.on_shed();
    slo.on_completed(/*hit=*/false, /*preempted=*/true);
  }
  const auto snap = slo.snapshot();
  EXPECT_EQ(snap.breaches, 0u);
  EXPECT_FALSE(snap.in_breach);
  EXPECT_DOUBLE_EQ(snap.hit_rate, 0.0);
  EXPECT_DOUBLE_EQ(snap.preempt_rate, 1.0);
  EXPECT_DOUBLE_EQ(snap.shed_rate, 1.0);
}

TEST(SloMonitor, WindowRatesSlide) {
  SloConfig cfg;
  cfg.window = 4;
  cfg.min_samples = 4;
  SloMonitor slo{cfg};
  slo.on_completed(true, false);
  slo.on_completed(true, false);
  slo.on_completed(false, true);
  slo.on_completed(false, true);
  auto snap = slo.snapshot();
  EXPECT_EQ(snap.completion_samples, 4u);
  EXPECT_DOUBLE_EQ(snap.hit_rate, 0.5);
  EXPECT_DOUBLE_EQ(snap.preempt_rate, 0.5);
  // Four more hits push the misses out of the window entirely.
  for (int i = 0; i < 4; ++i) slo.on_completed(true, false);
  snap = slo.snapshot();
  EXPECT_EQ(snap.completion_samples, 4u);
  EXPECT_DOUBLE_EQ(snap.hit_rate, 1.0);
  EXPECT_DOUBLE_EQ(snap.preempt_rate, 0.0);
  // Lifetime totals remember everything the window forgot.
  EXPECT_EQ(snap.total_completed, 8u);
  EXPECT_EQ(snap.total_hits, 6u);
  EXPECT_EQ(snap.total_preempted, 2u);
}

TEST(SloMonitor, MinSamplesGatesBreach) {
  SloConfig cfg;
  cfg.window = 16;
  cfg.min_samples = 8;
  cfg.max_shed_rate = 0.0;  // any shed in a warm window breaches
  SloMonitor slo{cfg};
  for (int i = 0; i < 7; ++i) slo.on_shed();
  EXPECT_EQ(slo.snapshot().breaches, 0u);  // cold window abstains
  slo.on_shed();                           // 8th sample arms the window
  const auto snap = slo.snapshot();
  EXPECT_EQ(snap.breaches, 1u);
  EXPECT_TRUE(snap.in_breach);
  EXPECT_GE(snap.last_breach_ms, 0.0);
}

TEST(SloMonitor, CooldownSuppressesAndRecoveryRearms) {
  SloConfig cfg;
  cfg.window = 4;
  cfg.min_samples = 4;
  cfg.max_shed_rate = 0.5;
  cfg.cooldown_ms = 1e9;  // one breach per violation episode
  SloMonitor slo{cfg};
  std::vector<std::string> reasons;
  slo.set_on_breach([&](const SloSnapshot& at, const std::string& reason) {
    reasons.push_back(reason);
    EXPECT_TRUE(at.in_breach);
  });
  for (int i = 0; i < 4; ++i) slo.on_shed();  // shed_rate 1.0 > 0.5
  EXPECT_EQ(slo.snapshot().breaches, 1u);
  for (int i = 0; i < 8; ++i) slo.on_shed();  // still violating: suppressed
  EXPECT_EQ(slo.snapshot().breaches, 1u);
  // Recovery (window back under threshold) re-arms immediately...
  for (int i = 0; i < 4; ++i) slo.on_admitted();
  EXPECT_FALSE(slo.snapshot().in_breach);
  // ...so the next violation episode fires a fresh breach.
  for (int i = 0; i < 4; ++i) slo.on_shed();
  const auto snap = slo.snapshot();
  EXPECT_EQ(snap.breaches, 2u);
  EXPECT_EQ(snap.total_shed, 16u);
  EXPECT_EQ(snap.total_admitted, 4u);
  ASSERT_EQ(reasons.size(), 2u);
  EXPECT_EQ(reasons[0], "shed_rate");
  EXPECT_EQ(reasons[1], "shed_rate");
}

TEST(SloMonitor, SnapshotJsonParses) {
  SloMonitor slo;
  slo.on_admitted();
  slo.on_completed(true, false);
  const auto doc = util::json_parse(slo.snapshot().to_json());
  EXPECT_EQ(doc.at("total_completed").as_number(), 1);
  EXPECT_EQ(doc.at("total_hits").as_number(), 1);
  EXPECT_EQ(doc.at("breaches").as_number(), 0);
}

// --------------------------------------------------------------- PromWriter

TEST(PromWriter, CounterAndGaugeFormat) {
  PromWriter w;
  w.counter("einet_requests_total", "Requests seen.", 42.0);
  w.gauge("einet_depth", "Queue depth.", 3.0, {{"queue", "main"}});
  EXPECT_EQ(w.str(),
            "# HELP einet_requests_total Requests seen.\n"
            "# TYPE einet_requests_total counter\n"
            "einet_requests_total 42\n"
            "# HELP einet_depth Queue depth.\n"
            "# TYPE einet_depth gauge\n"
            "einet_depth{queue=\"main\"} 3\n");
}

TEST(PromWriter, PreambleOncePerFamily) {
  PromWriter w;
  w.summary("einet_stage_ms", "Stage latency.", 10.0, 4, {{0.5, 2.5}},
            {{"stage", "queue"}});
  w.summary("einet_stage_ms", "Stage latency.", 20.0, 4, {{0.5, 5.0}},
            {{"stage", "exec"}});
  const std::string out = w.str();
  std::size_t helps = 0;
  for (std::size_t pos = 0;
       (pos = out.find("# HELP einet_stage_ms", pos)) != std::string::npos;
       ++pos)
    ++helps;
  EXPECT_EQ(helps, 1u);
  EXPECT_NE(out.find("einet_stage_ms{stage=\"queue\",quantile=\"0.5\"} 2.5"),
            std::string::npos);
  EXPECT_NE(out.find("einet_stage_ms_sum{stage=\"exec\"} 20"),
            std::string::npos);
  EXPECT_NE(out.find("einet_stage_ms_count{stage=\"queue\"} 4"),
            std::string::npos);
}

TEST(PromWriter, EscapesLabelValues) {
  EXPECT_EQ(PromWriter::escape_label("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
  PromWriter w;
  w.gauge("einet_g", "g", 1.0, {{"path", "a\"b\nc"}});
  EXPECT_NE(w.str().find("einet_g{path=\"a\\\"b\\nc\"} 1"), std::string::npos);
}

TEST(PromWriter, NonFiniteValuesUsePrometheusLiterals) {
  PromWriter w;
  w.gauge("einet_nan", "n", std::nan(""));
  w.gauge("einet_pinf", "p", std::numeric_limits<double>::infinity());
  w.gauge("einet_ninf", "m", -std::numeric_limits<double>::infinity());
  const std::string out = w.str();
  EXPECT_NE(out.find("einet_nan NaN\n"), std::string::npos);
  EXPECT_NE(out.find("einet_pinf +Inf\n"), std::string::npos);
  EXPECT_NE(out.find("einet_ninf -Inf\n"), std::string::npos);
}

TEST(PromWriter, RejectsInvalidNames) {
  EXPECT_TRUE(PromWriter::valid_name("einet_ok_total"));
  EXPECT_FALSE(PromWriter::valid_name("1bad"));
  EXPECT_FALSE(PromWriter::valid_name("has space"));
  PromWriter w;
  EXPECT_THROW(w.counter("1bad", "h", 1.0), std::invalid_argument);
  EXPECT_THROW(w.gauge("einet_g", "h", 1.0, {{"9label", "v"}}),
               std::invalid_argument);
}

// ------------------------------------------------------------- TelemetryHub

Source counting_source(const std::string& name, int value) {
  return Source{
      .name = name,
      .prometheus =
          [name, value](PromWriter& w) {
            w.counter("einet_" + name + "_total", "test counter",
                      static_cast<double>(value));
          },
      .json = [value] { return "{\"value\": " + std::to_string(value) + "}"; },
  };
}

TEST(TelemetryHub, RendersUptimeAndSourcesInOrder) {
  TelemetryHub hub;
  hub.add(counting_source("alpha", 1));
  hub.add(counting_source("beta", 2));
  EXPECT_EQ(hub.num_sources(), 2u);
  const std::string prom = hub.render_prometheus();
  const auto uptime = prom.find("einet_uptime_ms");
  const auto alpha = prom.find("einet_alpha_total 1");
  const auto beta = prom.find("einet_beta_total 2");
  ASSERT_NE(uptime, std::string::npos);
  ASSERT_NE(alpha, std::string::npos);
  ASSERT_NE(beta, std::string::npos);
  EXPECT_LT(uptime, alpha);
  EXPECT_LT(alpha, beta);  // registration order

  const auto doc = util::json_parse(hub.render_snapshot_json());
  EXPECT_GE(doc.at("uptime_ms").as_number(), 0.0);
  EXPECT_EQ(doc.at("sources").at("alpha").at("value").as_number(), 1);
  EXPECT_EQ(doc.at("sources").at("beta").at("value").as_number(), 2);
}

TEST(TelemetryHub, RejectsBadSourcesAndRemoves) {
  TelemetryHub hub;
  hub.add(counting_source("alpha", 1));
  EXPECT_THROW(hub.add(counting_source("alpha", 2)), std::invalid_argument);
  EXPECT_THROW(hub.add(counting_source("", 3)), std::invalid_argument);
  Source no_renderers;
  no_renderers.name = "empty";
  EXPECT_THROW(hub.add(std::move(no_renderers)), std::invalid_argument);
  hub.remove("alpha");
  hub.remove("alpha");  // no-op when absent
  EXPECT_EQ(hub.num_sources(), 0u);
  EXPECT_EQ(hub.render_prometheus().find("einet_alpha_total"),
            std::string::npos);
}

// ----------------------------------------------------------- FlightRecorder

std::filesystem::path fresh_dump_dir(const std::string& tag) {
  const auto dir = std::filesystem::path{::testing::TempDir()} /
                   ("einet_flight_" + tag);
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(FlightRecorder, CtorValidatesConfig) {
  EXPECT_THROW(FlightRecorder{FlightRecorderConfig{.dir = ""}},
               std::invalid_argument);
  EXPECT_THROW(FlightRecorder{FlightRecorderConfig{.prefix = ""}},
               std::invalid_argument);
  EXPECT_THROW(FlightRecorder{FlightRecorderConfig{.min_interval_ms = -1.0}},
               std::invalid_argument);
}

TEST(FlightRecorder, DumpWritesTraceAndMetricsArtifacts) {
  const auto dir = fresh_dump_dir("dump");
  FlightRecorderConfig cfg;
  cfg.dir = dir.string();
  cfg.prefix = "unit";
  cfg.min_interval_ms = 0.0;
  FlightRecorder rec{cfg, [] { return std::string{"{\"probe\": 7}"}; }};
  const std::string path = rec.dump("slo breach!");
  ASSERT_FALSE(path.empty());
  // The reason is sanitized into a file-name-safe fragment.
  EXPECT_EQ(path, (dir / "unit_0_slo_breach_.trace.json").string());
  EXPECT_TRUE(std::filesystem::exists(path));
  const auto metrics_path = dir / "unit_0_slo_breach_.metrics.json";
  ASSERT_TRUE(std::filesystem::exists(metrics_path));
  std::ifstream in{metrics_path};
  std::stringstream body;
  body << in.rdbuf();
  EXPECT_EQ(util::json_parse(body.str()).at("probe").as_number(), 7);
  // The trace artifact is valid Chrome-trace JSON (possibly zero events).
  std::ifstream trace_in{path};
  std::stringstream trace_body;
  trace_body << trace_in.rdbuf();
  EXPECT_NO_THROW(util::json_parse(trace_body.str()));
  EXPECT_EQ(rec.dumps(), 1u);
}

TEST(FlightRecorder, MinIntervalRateLimitsDumps) {
  const auto dir = fresh_dump_dir("interval");
  FlightRecorderConfig cfg;
  cfg.dir = dir.string();
  cfg.min_interval_ms = 1e9;
  FlightRecorder rec{cfg};
  EXPECT_FALSE(rec.dump("first").empty());
  EXPECT_TRUE(rec.dump("second").empty());  // inside the spacing window
  EXPECT_EQ(rec.dumps(), 1u);
}

TEST(FlightRecorder, MaxDumpsCapsLifetimeOutput) {
  const auto dir = fresh_dump_dir("cap");
  FlightRecorderConfig cfg;
  cfg.dir = dir.string();
  cfg.max_dumps = 2;
  cfg.min_interval_ms = 0.0;
  FlightRecorder rec{cfg};
  EXPECT_FALSE(rec.dump("a").empty());
  EXPECT_FALSE(rec.dump("b").empty());
  EXPECT_TRUE(rec.dump("c").empty());
  EXPECT_EQ(rec.dumps(), 2u);
}

// ------------------------------------------------------ TelemetryHttpServer

/// Raw one-shot exchange for requests http_get cannot produce (bad methods,
/// malformed request lines); returns the status code from the response line.
int raw_request_status(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buf[1024];
  ssize_t n = 0;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0)
    response.append(buf, static_cast<std::size_t>(n));
  ::close(fd);
  const auto space = response.find(' ');
  if (space == std::string::npos) return -1;
  return std::stoi(response.substr(space + 1));
}

class HttpEndpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    hub_.add(counting_source("probe", 5));
    server_ = std::make_unique<TelemetryHttpServer>(hub_);
    server_->start();
    ASSERT_NE(server_->port(), 0);
  }
  void TearDown() override { server_->stop(); }

  TelemetryHub hub_;
  std::unique_ptr<TelemetryHttpServer> server_;
};

TEST_F(HttpEndpointTest, ServesMetricsHealthzAndSnapshot) {
  const auto metrics = http_get("127.0.0.1", server_->port(), "/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("einet_uptime_ms"), std::string::npos);
  EXPECT_NE(metrics.body.find("einet_probe_total 5"), std::string::npos);

  const auto health = http_get("127.0.0.1", server_->port(), "/healthz");
  EXPECT_EQ(health.status, 200);
  EXPECT_EQ(health.body, "ok\n");

  const auto snap = http_get("127.0.0.1", server_->port(), "/snapshot.json");
  EXPECT_EQ(snap.status, 200);
  const auto doc = util::json_parse(snap.body);
  EXPECT_EQ(doc.at("sources").at("probe").at("value").as_number(), 5);
  EXPECT_EQ(server_->scrapes(), 3u);
}

TEST_F(HttpEndpointTest, RejectsUnknownRoutesAndMethods) {
  EXPECT_EQ(http_get("127.0.0.1", server_->port(), "/nope").status, 404);
  EXPECT_EQ(raw_request_status(server_->port(),
                               "POST /metrics HTTP/1.0\r\n\r\n"),
            405);
  EXPECT_EQ(raw_request_status(server_->port(), "garbage\r\n\r\n"), 400);
  EXPECT_EQ(server_->scrapes(), 0u);  // only 200s count as scrapes
}

TEST_F(HttpEndpointTest, ConcurrentScrapesAreConsistent) {
  constexpr int kThreads = 4;
  constexpr int kScrapesEach = 8;
  std::vector<std::thread> threads;
  std::atomic<int> ok{0};
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kScrapesEach; ++i) {
        const auto res = http_get("127.0.0.1", server_->port(), "/metrics");
        if (res.status == 200 &&
            res.body.find("einet_probe_total 5") != std::string::npos)
          ok.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok.load(), kThreads * kScrapesEach);
  EXPECT_EQ(server_->scrapes(),
            static_cast<std::uint64_t>(kThreads * kScrapesEach));
}

TEST_F(HttpEndpointTest, StopIsIdempotent) {
  server_->stop();
  server_->stop();
  EXPECT_FALSE(server_->running());
}

// --------------------------------------- EdgeServer stage attribution plane

profiling::ETProfile tiny_et() {
  profiling::ETProfile et;
  et.model_name = "tiny";
  et.platform_name = "test";
  et.conv_ms = {1.0, 1.0, 1.0, 1.0};
  et.branch_ms = {0.5, 0.5, 0.5, 0.5};
  return et;
}

profiling::CSProfile tiny_cs(std::size_t records, std::uint64_t seed = 7) {
  profiling::CSProfile cs;
  cs.model_name = "tiny";
  cs.dataset_name = "synthetic";
  cs.num_exits = 4;
  util::Rng rng{seed};
  for (std::size_t r = 0; r < records; ++r) {
    profiling::CSRecord rec;
    float conf = rng.uniform_f(0.2f, 0.5f);
    for (std::size_t e = 0; e < cs.num_exits; ++e) {
      conf = std::min(1.0f, conf + rng.uniform_f(0.0f, 0.2f));
      rec.confidence.push_back(conf);
      rec.correct.push_back(rng.bernoulli(conf) ? 1 : 0);
    }
    rec.label = r % 10;
    cs.records.push_back(std::move(rec));
  }
  cs.validate();
  return cs;
}

TEST(StagePlane, EdgeServerStageTracksReconcileWithEndToEnd) {
  const auto et = tiny_et();
  const auto cs = tiny_cs(32);
  const core::UniformExitDistribution dist{et.total_ms()};
  serving::ServerConfig config;
  config.pool.num_workers = 2;
  serving::EdgeServer server{
      et,
      serving::make_replicated_engine_factory(et, nullptr, {},
                                              std::vector<float>(4, 0.5f)),
      [&dist](runtime::ElasticEngine& engine, const serving::Task& task,
              util::Rng&) {
        return engine.run(*task.record, task.deadline_ms, dist);
      },
      config};

  constexpr std::size_t kTasks = 64;
  util::Rng rng{11};
  for (std::size_t i = 0; i < kTasks; ++i)
    server.submit(cs.records[rng.uniform_int(cs.size())], 20.0);
  server.shutdown();

  const auto snap = server.metrics();
  ASSERT_EQ(snap.completed, kTasks);
  // Every completion stamps one sample into every stage track — including
  // the assembler track, which records 0 dwell in unbatched serving.
  for (const auto* stage :
       {&snap.stage_admission, &snap.stage_queue, &snap.stage_assembler,
        &snap.stage_exec, &snap.stage_planner, &snap.stage_blocks})
    EXPECT_EQ(stage->stats.count(), kTasks);
  EXPECT_EQ(snap.stage_respond.stats.count(), 0u);  // no TCP front-end here
  EXPECT_DOUBLE_EQ(snap.stage_assembler.stats.max(), 0.0);

  // planner + blocks is an exact partition of exec (per task, hence in sum).
  const double split =
      snap.stage_planner.stats.mean() + snap.stage_blocks.stats.mean();
  EXPECT_NEAR(split, snap.stage_exec.stats.mean(),
              1e-9 * std::max(1.0, snap.stage_exec.stats.mean()));

  // The pipeline stages reconcile with the end-to-end latency.
  const double pipeline =
      snap.stage_admission.stats.mean() + snap.stage_queue.stats.mean() +
      snap.stage_assembler.stats.mean() + snap.stage_exec.stats.mean();
  const double e2e = snap.end_to_end.stats.mean();
  EXPECT_NEAR(pipeline, e2e, std::max(0.5, 0.05 * e2e));

  // The admission path tracked queue occupancy and the SLO window saw every
  // lifecycle event.
  EXPECT_GE(snap.queue_peak_depth, 1u);
  ASSERT_TRUE(snap.has_slo);
  EXPECT_EQ(snap.slo.total_completed, snap.completed);
  EXPECT_EQ(snap.slo.total_hits, snap.valid);
  EXPECT_EQ(snap.slo.total_admitted, snap.admitted);
  EXPECT_EQ(snap.slo.total_shed, snap.shed);
  EXPECT_EQ(snap.slo.breaches, 0u);  // default thresholds never breach
}

TEST(StagePlane, ServingSourceRendersValidPrometheus) {
  const auto et = tiny_et();
  const auto cs = tiny_cs(8);
  const core::UniformExitDistribution dist{et.total_ms()};
  serving::EdgeServer server{
      et,
      serving::make_replicated_engine_factory(et, nullptr, {},
                                              std::vector<float>(4, 0.5f)),
      [&dist](runtime::ElasticEngine& engine, const serving::Task& task,
              util::Rng&) {
        return engine.run(*task.record, task.deadline_ms, dist);
      }};
  for (std::size_t i = 0; i < 8; ++i) server.submit(cs.records[i], 20.0);
  server.shutdown();

  TelemetryHub hub;
  hub.add(serving::telemetry_source(server));
  const std::string prom = hub.render_prometheus();
  EXPECT_NE(prom.find("einet_serving_submitted_total 8"), std::string::npos);
  EXPECT_NE(prom.find("einet_serving_completed_total 8"), std::string::npos);
  EXPECT_NE(prom.find("einet_serving_stage_ms_count{stage=\"exec\"} 8"),
            std::string::npos);
  EXPECT_NE(prom.find("einet_serving_slo_in_breach 0"), std::string::npos);
  // The stage family's rows are contiguous: between the first and the last
  // stage sample no other family's sample may appear.
  const auto first = prom.find("einet_serving_stage_ms");
  const auto last = prom.rfind("einet_serving_stage_ms");
  ASSERT_NE(first, std::string::npos);
  const auto tail_start = prom.find('\n', last);
  std::istringstream middle{prom.substr(first, tail_start - first)};
  for (std::string line; std::getline(middle, line);) {
    if (line.empty() || line[0] == '#') continue;
    EXPECT_EQ(line.rfind("einet_serving_stage_ms", 0), 0u)
        << "foreign sample inside the stage family: " << line;
  }
  hub.remove("serving");
}

}  // namespace
}  // namespace einet::obs::telemetry
