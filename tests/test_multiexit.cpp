#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "models/backbones.hpp"
#include "models/trainer.hpp"
#include "nn/conv2d.hpp"
#include "nn/sequential.hpp"
#include "profiling/profiler.hpp"

namespace einet::models {
namespace {

const nn::Shape kInput{3, 16, 16};
constexpr std::size_t kClasses = 10;

MultiExitNetwork tiny_net(util::Rng& rng, std::size_t blocks = 3) {
  return make_msdnet(
      MsdnetSpec{.blocks = blocks, .step = 1, .base = 1, .channel = 4},
      kInput, kClasses, rng);
}

TEST(Branch, StructureFollowsSpec) {
  util::Rng rng{1};
  // 1 conv + 2 FC with GAP: output must be (N, classes).
  auto b = make_branch({8, 4, 4}, 10, BranchSpec{}, rng);
  EXPECT_EQ(b->out_shape({2, 8, 4, 4}), (nn::Shape{2, 10}));
  // Flatten variant.
  auto f = make_branch({8, 4, 4}, 10,
                       BranchSpec{.convs = 2, .fcs = 3, .global_pool = false},
                       rng);
  EXPECT_EQ(f->out_shape({1, 8, 4, 4}), (nn::Shape{1, 10}));
  EXPECT_THROW(make_branch({8, 4, 4}, 10, BranchSpec{.fcs = 0}, rng),
               std::invalid_argument);
  EXPECT_THROW(make_branch({8, 4}, 10, BranchSpec{}, rng),
               std::invalid_argument);
}

TEST(MultiExitNetwork, ConstructionValidates) {
  util::Rng rng{2};
  EXPECT_THROW((MultiExitNetwork{"x", {3, 16}, 10}), std::invalid_argument);
  EXPECT_THROW((MultiExitNetwork{"x", kInput, 0}), std::invalid_argument);
  MultiExitNetwork net{"x", kInput, kClasses};
  EXPECT_THROW(net.forward_all(nn::Tensor{{1, 3, 16, 16}}, false),
               std::logic_error);
}

TEST(MultiExitNetwork, BranchMustEmitLogits) {
  util::Rng rng{3};
  MultiExitNetwork net{"x", kInput, kClasses};
  auto conv = std::make_unique<nn::Conv2d>(
      nn::Conv2dSpec{.in_channels = 3, .out_channels = 4}, rng);
  auto bad_branch = std::make_unique<nn::Conv2d>(
      nn::Conv2dSpec{.in_channels = 4, .out_channels = 4}, rng);
  EXPECT_THROW(net.add_block(std::move(conv), std::move(bad_branch)),
               std::invalid_argument);
}

TEST(MultiExitNetwork, ForwardAllShapes) {
  util::Rng rng{4};
  auto net = tiny_net(rng);
  const auto logits = net.forward_all(nn::Tensor{{2, 3, 16, 16}}, false);
  ASSERT_EQ(logits.size(), 3u);
  for (const auto& l : logits) EXPECT_EQ(l.shape(), (nn::Shape{2, kClasses}));
}

TEST(MultiExitNetwork, StepwiseMatchesForwardAll) {
  util::Rng rng{5};
  auto net = tiny_net(rng);
  const nn::Tensor x = nn::Tensor::uniform({1, 3, 16, 16}, -1, 1, rng);
  const auto all = net.forward_all(x, false);
  nn::Tensor features = x;
  for (std::size_t i = 0; i < net.num_exits(); ++i) {
    features = net.run_conv_part(i, features);
    const nn::Tensor logits = net.run_branch(i, features);
    for (std::size_t k = 0; k < logits.numel(); ++k)
      EXPECT_FLOAT_EQ(logits[k], all[i][k]) << "exit " << i;
  }
}

TEST(MultiExitNetwork, FlopsArePositiveAndConsistent) {
  util::Rng rng{6};
  auto net = tiny_net(rng);
  std::size_t sum = 0;
  for (std::size_t i = 0; i < net.num_exits(); ++i) {
    EXPECT_GT(net.conv_part_flops(i), 0u);
    EXPECT_GT(net.branch_flops(i), 0u);
    sum += net.conv_part_flops(i) + net.branch_flops(i);
  }
  EXPECT_EQ(net.total_flops_all_branches(), sum);
  EXPECT_LT(net.trunk_flops(), sum);
  EXPECT_THROW(net.conv_part_flops(99), std::out_of_range);
}

TEST(MultiExitNetwork, FeatureShapesChain) {
  util::Rng rng{7};
  auto net = tiny_net(rng);
  EXPECT_EQ(net.feature_shape(0), kInput);
  for (std::size_t i = 0; i <= net.num_exits(); ++i)
    EXPECT_EQ(net.feature_shape(i).size(), 3u);
}

TEST(Trainer, LossDecreasesOverEpochs) {
  util::Rng rng{8};
  auto ds = data::make_synthetic([] {
    auto s = data::synth_cifar10_spec(120, 40);
    return s;
  }());
  auto net = tiny_net(rng);
  MultiExitTrainer trainer{net};
  std::vector<float> losses;
  TrainConfig tc;
  tc.epochs = 6;
  tc.batch_size = 16;
  tc.on_epoch = [&](std::size_t, float loss) { losses.push_back(loss); };
  trainer.train(*ds.train, tc);
  ASSERT_EQ(losses.size(), 6u);
  EXPECT_LT(losses.back(), losses.front());
}

TEST(Trainer, EvaluateReportsPerExitAccuracy) {
  util::Rng rng{9};
  auto ds = data::make_synthetic([] {
    auto s = data::synth_cifar10_spec(60, 30);
    return s;
  }());
  auto net = tiny_net(rng);
  MultiExitTrainer trainer{net};
  const auto res = trainer.evaluate(*ds.test);
  ASSERT_EQ(res.exit_accuracy.size(), net.num_exits());
  for (double a : res.exit_accuracy) {
    EXPECT_GE(a, 0.0);
    EXPECT_LE(a, 1.0);
  }
  EXPECT_DOUBLE_EQ(res.final_accuracy(), res.exit_accuracy.back());
}

TEST(Trainer, RejectsBadWeights) {
  util::Rng rng{10};
  auto ds = data::make_synthetic([] {
    auto s = data::synth_cifar10_spec(20, 10);
    return s;
  }());
  auto net = tiny_net(rng);
  MultiExitTrainer trainer{net};
  TrainConfig tc;
  tc.epochs = 1;
  tc.exit_weights = {1.0f};  // wrong size for 3 exits
  EXPECT_THROW(trainer.train(*ds.train, tc), std::invalid_argument);
}

// ---- Backbone registry, parameterised over the paper's models. ------------

struct BackboneCase {
  std::string name;
  std::size_t expected_exits;
};

class BackboneSuite : public ::testing::TestWithParam<BackboneCase> {};

TEST_P(BackboneSuite, HasPaperExitCountAndRuns) {
  util::Rng rng{11};
  auto net = make_model(GetParam().name, kInput, kClasses, rng);
  EXPECT_EQ(net.num_exits(), GetParam().expected_exits);
  const auto logits = net.forward_all(nn::Tensor{{1, 3, 16, 16}}, false);
  EXPECT_EQ(logits.size(), GetParam().expected_exits);
  EXPECT_GT(net.num_params(), 0u);
}

TEST_P(BackboneSuite, ConvPartCostsAreProfileable) {
  util::Rng rng{12};
  auto net = make_model(GetParam().name, kInput, kClasses, rng);
  const auto et = profiling::profile_execution_time(
      net, profiling::edge_fast_platform());
  EXPECT_EQ(et.num_blocks(), net.num_exits());
  EXPECT_GT(et.total_ms(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    PaperModels, BackboneSuite,
    ::testing::Values(BackboneCase{"B-AlexNet", 3},
                      BackboneCase{"FlexVGG-16", 5},
                      BackboneCase{"ResNet-50", 6}, BackboneCase{"VGG-16", 14},
                      BackboneCase{"MSDNet21", 21},
                      BackboneCase{"MSDNet40", 40}),
    [](const auto& info) {
      std::string n = info.param.name;
      for (auto& c : n)
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      return n;
    });

TEST(Backbones, RegistryRejectsUnknownName) {
  util::Rng rng{13};
  EXPECT_THROW(make_model("LeNet", kInput, kClasses, rng),
               std::invalid_argument);
  EXPECT_EQ(evaluation_model_names().size(), 6u);
}

TEST(Backbones, ClassicAndCompressedAreSingleExit) {
  util::Rng rng{14};
  const MsdnetSpec spec{.blocks = 6, .step = 1, .base = 2, .channel = 8};
  auto classic = make_classic_msdnet(spec, kInput, kClasses, rng);
  auto compressed = make_compressed_msdnet(spec, kInput, kClasses, rng);
  EXPECT_EQ(classic.num_exits(), 1u);
  EXPECT_EQ(compressed.num_exits(), 1u);
  // Compressed halves the channels, so it must be much cheaper.
  EXPECT_LT(compressed.trunk_flops(), classic.trunk_flops() / 2);
}

TEST(Backbones, MsdnetSpecControlsDepthAndCost) {
  util::Rng rng{15};
  auto small = make_msdnet({.blocks = 4, .step = 1, .base = 1, .channel = 4},
                           kInput, kClasses, rng);
  auto big = make_msdnet({.blocks = 4, .step = 2, .base = 4, .channel = 8},
                         kInput, kClasses, rng);
  EXPECT_EQ(small.num_exits(), big.num_exits());
  EXPECT_LT(small.trunk_flops(), big.trunk_flops());
  EXPECT_THROW(
      make_msdnet({.blocks = 0, .step = 1, .base = 1, .channel = 4}, kInput,
                  kClasses, rng),
      std::invalid_argument);
}

}  // namespace
}  // namespace einet::models
