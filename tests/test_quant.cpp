// Int8 quantized-compute suite (DESIGN.md §16): quantization round-trip
// error bounds, per-channel weight scales + zero-point compensation algebra,
// SIMD-vs-scalar quantizer bit-identity, int8 microkernel exactness against
// the naive reference (kN/kT/transposed-C), fused-vs-unfused epilogue
// bit-identity, 1-vs-4-thread determinism, quantized-conv error bounds vs
// the fp32 layer, live/batched/split engine agreement with a quantized
// trunk, and the "-q8" artifact discipline (fp32 profile files stay
// byte-identical when the quantized set is generated next to them).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/time_distribution.hpp"
#include "data/synthetic.hpp"
#include "models/backbones.hpp"
#include "models/trainer.hpp"
#include "nn/conv2d.hpp"
#include "nn/gemm.hpp"
#include "nn/memplan/plan.hpp"
#include "nn/memplan/profile.hpp"
#include "nn/quant/backbone.hpp"
#include "nn/quant/profile.hpp"
#include "nn/quant/qgemm.hpp"
#include "nn/quant/quantize.hpp"
#include "nn/workspace.hpp"
#include "predictor/cs_predictor.hpp"
#include "profiling/platform.hpp"
#include "profiling/profiler.hpp"
#include "runtime/batched_engine.hpp"
#include "runtime/live_engine.hpp"
#include "util/rng.hpp"

namespace einet {
namespace {

using nn::quant::kActZeroPoint;
using nn::quant::QuantizedMatrix;
using nn::quant::RequantParams;

// ------------------------------------------------------------- primitives

TEST(Quantize, SymmetricScale) {
  EXPECT_FLOAT_EQ(nn::quant::symmetric_scale(127.0f), 1.0f);
  EXPECT_FLOAT_EQ(nn::quant::symmetric_scale(1.0f), 1.0f / 127.0f);
  // All-zero tensors get scale 1 so dequantization stays well-defined.
  EXPECT_FLOAT_EQ(nn::quant::symmetric_scale(0.0f), 1.0f);
}

TEST(Quantize, AbsmaxMatchesScalarScan) {
  util::Rng rng{11};
  for (const std::size_t n : {0UL, 1UL, 7UL, 15UL, 16UL, 17UL, 33UL, 1003UL}) {
    std::vector<float> x(n);
    for (auto& v : x) v = rng.uniform_f(-9.0f, 9.0f);
    float ref = 0.0f;
    for (float v : x) ref = std::max(ref, std::fabs(v));
    EXPECT_EQ(nn::quant::absmax(x.data(), n), ref) << "n=" << n;
  }
  // The max must see negative extrema too.
  const float neg[3] = {0.5f, -4.0f, 1.0f};
  EXPECT_EQ(nn::quant::absmax(neg, 3), 4.0f);
}

TEST(Quantize, RoundTripErrorBoundedByHalfScale) {
  util::Rng rng{12};
  std::vector<float> x(517);
  for (auto& v : x) v = rng.uniform_f(-3.0f, 3.0f);
  std::vector<std::uint8_t> q(x.size());
  const float scale = nn::quant::quantize_acts(x.data(), x.size(), q.data());

  float am = 0.0f;
  for (float v : x) am = std::max(am, std::fabs(v));
  EXPECT_FLOAT_EQ(scale, nn::quant::symmetric_scale(am));
  for (std::size_t i = 0; i < x.size(); ++i) {
    const float back = nn::quant::dequantize_act_value(q[i], scale);
    // Round-to-nearest with a scale that covers the whole range: the error
    // of every value is at most half a quantization step.
    EXPECT_LE(std::fabs(back - x[i]), 0.5f * scale + 1e-7f) << "i=" << i;
  }
}

TEST(Quantize, SaturationAndRoundHalfToEven) {
  // Values past +-127 steps saturate instead of wrapping.
  EXPECT_EQ(nn::quant::quantize_act_value(1e6f, 1.0f), 255);
  EXPECT_EQ(nn::quant::quantize_act_value(-1e6f, 1.0f), 1);
  EXPECT_EQ(nn::quant::quantize_weight_value(1e6f, 1.0f), 127);
  EXPECT_EQ(nn::quant::quantize_weight_value(-1e6f, 1.0f), -127);
  // Zero maps exactly to the zero point.
  EXPECT_EQ(nn::quant::quantize_act_value(0.0f, 0.25f), kActZeroPoint);
  // nearbyint under the default environment is round-half-to-even.
  EXPECT_EQ(nn::quant::quantize_act_value(0.5f, 1.0f), kActZeroPoint);
  EXPECT_EQ(nn::quant::quantize_act_value(1.5f, 1.0f), kActZeroPoint + 2);
  EXPECT_EQ(nn::quant::quantize_act_value(2.5f, 1.0f), kActZeroPoint + 2);
  EXPECT_EQ(nn::quant::quantize_act_value(-0.5f, 1.0f), kActZeroPoint);
}

TEST(Quantize, SimdActsBitIdenticalToScalarHelper) {
  // The vectorized quantize_acts must produce exactly the bytes the scalar
  // inline helper would, for every vector-width remainder.
  util::Rng rng{13};
  for (const std::size_t n :
       {1UL, 7UL, 8UL, 15UL, 16UL, 17UL, 31UL, 32UL, 33UL, 64UL, 1003UL}) {
    std::vector<float> x(n);
    for (auto& v : x) v = rng.uniform_f(-5.0f, 5.0f);
    std::vector<std::uint8_t> q(n);
    const float scale = nn::quant::quantize_acts(x.data(), n, q.data());
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(q[i], nn::quant::quantize_act_value(x[i], scale))
          << "n=" << n << " i=" << i;
  }
}

TEST(Quantize, PerChannelWeightScalesAndCompensation) {
  // Three rows with very different dynamic ranges: each row must get its own
  // scale (absmax_row / 127) and its own comp = 128 * sum of quantized codes.
  const std::size_t rows = 3, cols = 5;
  const std::vector<float> w = {
      0.1f,  -0.2f,  0.05f, 0.2f,  -0.1f,   // absmax 0.2
      10.0f, -40.0f, 25.0f, 5.0f,  -1.0f,   // absmax 40
      0.0f,  0.0f,   0.0f,  0.0f,  0.0f,    // all-zero row -> scale 1
  };
  const QuantizedMatrix q = nn::quant::quantize_weights(w.data(), rows, cols);
  ASSERT_EQ(q.rows, rows);
  ASSERT_EQ(q.cols, cols);
  EXPECT_FLOAT_EQ(q.scale[0], 0.2f / 127.0f);
  EXPECT_FLOAT_EQ(q.scale[1], 40.0f / 127.0f);
  EXPECT_FLOAT_EQ(q.scale[2], 1.0f);
  for (std::size_t r = 0; r < rows; ++r) {
    std::int32_t sum = 0;
    for (std::size_t c = 0; c < cols; ++c) {
      const std::int8_t expect =
          nn::quant::quantize_weight_value(w[r * cols + c], q.scale[r]);
      EXPECT_EQ(q.data[r * cols + c], expect) << "r=" << r << " c=" << c;
      sum += q.data[r * cols + c];
    }
    EXPECT_EQ(q.comp[r], 128 * sum) << "r=" << r;
  }
  // The absmax element of each row must quantize to exactly +-127.
  EXPECT_EQ(q.data[1 * cols + 1], -127);
  EXPECT_EQ(q.bytes(), rows * cols + rows * sizeof(float) +
                           rows * sizeof(std::int32_t));
}

// ------------------------------------------------------------------ qgemm

struct QGemmCase {
  std::size_t m, n, k;
};

/// Random quantized operands for one GEMM shape. Activations are stored in
/// the layout `tact` selects (kN: k x n, kT: n x k).
struct QGemmOperands {
  std::vector<std::int8_t> w;
  std::vector<std::uint8_t> act;
  std::vector<std::int32_t> comp;
  std::size_t lda;

  static QGemmOperands make(const QGemmCase& c, nn::Trans tact,
                            util::Rng& rng) {
    QGemmOperands o;
    o.w.resize(c.m * c.k);
    for (auto& v : o.w)
      v = static_cast<std::int8_t>(static_cast<int>(rng.uniform_int(255)) -
                                   127);
    o.act.resize(c.k * c.n);
    for (auto& v : o.act)
      v = static_cast<std::uint8_t>(1 + rng.uniform_int(255));
    o.comp.resize(c.m);
    for (std::size_t r = 0; r < c.m; ++r) {
      std::int32_t sum = 0;
      for (std::size_t x = 0; x < c.k; ++x) sum += o.w[r * c.k + x];
      o.comp[r] = 128 * sum;
    }
    o.lda = tact == nn::Trans::kN ? c.n : c.k;
    return o;
  }
};

const QGemmCase kCases[] = {
    {1, 1, 1},    // degenerate
    {8, 32, 4},   // exactly one AVX-512 VNNI tile / k-group
    {7, 31, 5},   // sub-tile remainders on every dimension
    {17, 33, 9},  // tile tails in m and n, odd k
    {64, 40, 64},
    {5, 8, 128},  // deep k, narrow output
    {128, 1, 36},  // linear layer shape: single column
};

TEST(QGemm, KernelNameIsKnown) {
  const std::string name = nn::quant::qgemm_kernel_name();
  EXPECT_TRUE(name == "avx512-vnni" || name == "avx2-maddwd" ||
              name == "scalar")
      << name;
}

TEST(QGemm, MatchesReferenceForBothActLayouts) {
  util::Rng rng{21};
  for (const auto tact : {nn::Trans::kN, nn::Trans::kT}) {
    for (const auto& c : kCases) {
      const auto o = QGemmOperands::make(c, tact, rng);
      std::vector<std::int32_t> got(c.m * c.n, -1), ref(c.m * c.n, -2);
      nn::quant::qgemm_i32(tact, c.m, c.n, c.k, o.w.data(), c.k, o.act.data(),
                           o.lda, o.comp.data(), got.data(), c.n, false);
      nn::quant::qgemm_i32_reference(tact, c.m, c.n, c.k, o.w.data(), c.k,
                                     o.act.data(), o.lda, ref.data(), c.n,
                                     false);
      ASSERT_EQ(0, std::memcmp(got.data(), ref.data(),
                               got.size() * sizeof(std::int32_t)))
          << "tact=" << (tact == nn::Trans::kN ? "kN" : "kT") << " m=" << c.m
          << " n=" << c.n << " k=" << c.k;
    }
  }
}

TEST(QGemm, TransposedCMatchesReference) {
  util::Rng rng{22};
  const QGemmCase c{17, 9, 21};
  const auto o = QGemmOperands::make(c, nn::Trans::kT, rng);
  std::vector<std::int32_t> got(c.n * c.m, -1), ref(c.n * c.m, -2);
  nn::quant::qgemm_i32(nn::Trans::kT, c.m, c.n, c.k, o.w.data(), c.k,
                       o.act.data(), o.lda, o.comp.data(), got.data(), c.m,
                       true);
  nn::quant::qgemm_i32_reference(nn::Trans::kT, c.m, c.n, c.k, o.w.data(),
                                 c.k, o.act.data(), o.lda, ref.data(), c.m,
                                 true);
  EXPECT_EQ(0, std::memcmp(got.data(), ref.data(),
                           got.size() * sizeof(std::int32_t)));
}

TEST(QGemm, FusedBitIdenticalToUnfusedPlusRequantize) {
  util::Rng rng{23};
  for (const bool relu : {false, true}) {
    for (const bool with_bias : {false, true}) {
      const QGemmCase c{17, 33, 40};
      const auto o = QGemmOperands::make(c, nn::Trans::kN, rng);
      std::vector<float> scale(c.m), bias(c.m);
      for (std::size_t r = 0; r < c.m; ++r) {
        scale[r] = rng.uniform_f(1e-4f, 1e-2f);
        bias[r] = rng.uniform_f(-1.0f, 1.0f);
      }
      const RequantParams rq{scale.data(), with_bias ? bias.data() : nullptr,
                             o.comp.data(), relu};
      std::vector<float> fused(c.m * c.n, -7.0f);
      nn::quant::qgemm_fused(nn::Trans::kN, c.m, c.n, c.k, o.w.data(), c.k,
                             o.act.data(), o.lda, rq, fused.data(), c.n,
                             false);
      std::vector<std::int32_t> acc(c.m * c.n);
      nn::quant::qgemm_i32(nn::Trans::kN, c.m, c.n, c.k, o.w.data(), c.k,
                           o.act.data(), o.lda, o.comp.data(), acc.data(),
                           c.n, false);
      std::vector<float> unfused(c.m * c.n);
      for (std::size_t r = 0; r < c.m; ++r)
        for (std::size_t j = 0; j < c.n; ++j)
          unfused[r * c.n + j] = nn::quant::requantize_one(
              acc[r * c.n + j], scale[r], with_bias ? bias[r] : 0.0f, relu);
      ASSERT_EQ(0, std::memcmp(fused.data(), unfused.data(),
                               fused.size() * sizeof(float)))
          << "relu=" << relu << " bias=" << with_bias;
    }
  }
}

TEST(QGemm, BitIdenticalAcrossThreadCounts) {
  const std::size_t saved = nn::gemm_threads();
  util::Rng rng{24};
  const QGemmCase c{64, 256, 128};
  const auto o = QGemmOperands::make(c, nn::Trans::kN, rng);
  std::vector<float> scale(c.m, 1e-3f);
  const RequantParams rq{scale.data(), nullptr, o.comp.data(), true};

  std::vector<std::int32_t> i32_1(c.m * c.n), i32_4(c.m * c.n);
  std::vector<float> f_1(c.m * c.n), f_4(c.m * c.n);
  nn::set_gemm_threads(1);
  nn::quant::qgemm_i32(nn::Trans::kN, c.m, c.n, c.k, o.w.data(), c.k,
                       o.act.data(), o.lda, o.comp.data(), i32_1.data(), c.n,
                       false);
  nn::quant::qgemm_fused(nn::Trans::kN, c.m, c.n, c.k, o.w.data(), c.k,
                         o.act.data(), o.lda, rq, f_1.data(), c.n, false);
  nn::set_gemm_threads(4);
  nn::quant::qgemm_i32(nn::Trans::kN, c.m, c.n, c.k, o.w.data(), c.k,
                       o.act.data(), o.lda, o.comp.data(), i32_4.data(), c.n,
                       false);
  nn::quant::qgemm_fused(nn::Trans::kN, c.m, c.n, c.k, o.w.data(), c.k,
                         o.act.data(), o.lda, rq, f_4.data(), c.n, false);
  nn::set_gemm_threads(saved);

  EXPECT_EQ(0, std::memcmp(i32_1.data(), i32_4.data(),
                           i32_1.size() * sizeof(std::int32_t)));
  EXPECT_EQ(0,
            std::memcmp(f_1.data(), f_4.data(), f_1.size() * sizeof(float)));
}

// --------------------------------------------------------- quantized conv

TEST(QuantConv, BatchRowsBitIdenticalToSoloRuns) {
  util::Rng rng{31};
  const nn::Conv2dSpec spec{.in_channels = 3,
                            .out_channels = 8,
                            .kernel = 3,
                            .stride = 1,
                            .padding = 1};
  nn::Conv2d conv{spec, rng};
  const nn::quant::QuantizedConv2d qconv{conv, /*fuse_relu=*/false};
  nn::FreshWorkspace ws;

  const std::size_t b = 3, h = 10, w = 10;
  nn::Tensor batch{{b, spec.in_channels, h, w}};
  for (auto& v : batch.data()) v = rng.uniform_f(-2.0f, 2.0f);
  nn::Tensor stacked;
  qconv.forward_into(batch, stacked, ws);

  const std::size_t img = spec.in_channels * h * w;
  const std::size_t out = stacked.numel() / b;
  for (std::size_t s = 0; s < b; ++s) {
    nn::Tensor one{{1, spec.in_channels, h, w}};
    std::memcpy(one.raw(), batch.raw() + s * img, img * sizeof(float));
    nn::Tensor y;
    qconv.forward_into(one, y, ws);
    ASSERT_EQ(y.numel(), out);
    // Per-sample activation scales: stacking must not perturb a single bit.
    ASSERT_EQ(0, std::memcmp(y.raw(), stacked.raw() + s * out,
                             out * sizeof(float)))
        << "sample " << s;
  }
}

TEST(QuantConv, OutputWithinAnalyticQuantizationBound) {
  util::Rng rng{32};
  const nn::Conv2dSpec spec{.in_channels = 4,
                            .out_channels = 6,
                            .kernel = 3,
                            .stride = 1,
                            .padding = 1};
  nn::Conv2d conv{spec, rng};
  const nn::quant::QuantizedConv2d qconv{conv, /*fuse_relu=*/false};
  nn::FreshWorkspace ws;

  const std::size_t h = 8, w = 8;
  nn::Tensor x{{1, spec.in_channels, h, w}};
  for (auto& v : x.data()) v = rng.uniform_f(-1.5f, 1.5f);

  nn::Tensor ref = conv.forward(x, /*train=*/false);
  nn::Tensor got;
  qconv.forward_into(x, got, ws);
  ASSERT_EQ(got.numel(), ref.numel());

  // Error budget per output element of channel oc (k = patch size):
  //   |sum w*x - sum w_hat*x_hat|
  //     <= 0.5 * scale_a * sum_k |w[oc][k]|           (activation rounding)
  //      + 0.5 * scale_w[oc] * k * (absmax_x + eps)   (weight rounding)
  // plus a small slack for the fp32 epilogue rounding.
  const std::size_t patch = spec.in_channels * spec.kernel * spec.kernel;
  const float absmax_x = nn::quant::absmax(x.raw(), x.numel());
  const float scale_a = nn::quant::symmetric_scale(absmax_x);
  const auto& qw = qconv.weights();
  const auto wspan = conv.weight().value.data();
  const std::size_t spatial = ref.numel() / spec.out_channels;
  for (std::size_t oc = 0; oc < spec.out_channels; ++oc) {
    float wsum = 0.0f;
    for (std::size_t i = 0; i < patch; ++i)
      wsum += std::fabs(wspan[oc * patch + i]);
    const float bound = 0.5f * scale_a * wsum +
                        0.5f * qw.scale[oc] * static_cast<float>(patch) *
                            (absmax_x + 0.5f * scale_a) +
                        1e-4f;
    for (std::size_t j = 0; j < spatial; ++j) {
      const std::size_t idx = oc * spatial + j;
      ASSERT_LE(std::fabs(got.raw()[idx] - ref.raw()[idx]), bound)
          << "oc=" << oc << " j=" << j;
    }
  }
}

// -------------------------------------------------------- engine fixture

struct QuantPipeline {
  data::SyntheticDataset ds;
  models::MultiExitNetwork net;
  profiling::ETProfile et;
  profiling::CSProfile cs;
  std::unique_ptr<predictor::CSPredictor> pred;
  // Built by SetUpTestSuite once the pipeline has its final address: the
  // backbone borrows a pointer to `net`, so it must not witness the moves
  // `build()` performs while assembling the struct.
  std::shared_ptr<const nn::quant::QuantizedBackbone> quant;

  static QuantPipeline build() {
    auto spec = data::synth_cifar10_spec(120, 40);
    auto ds = data::make_synthetic(spec);
    util::Rng rng{7};
    // B-AlexNet: plain Sequential conv parts (Conv2d + ReLU), so the
    // backbone actually quantizes layers — msdnet's composite blocks would
    // leave the int8 path vacuous.
    auto net = models::make_b_alexnet(ds.train->input_shape(),
                                      ds.train->num_classes(), rng);
    models::MultiExitTrainer trainer{net};
    models::TrainConfig tc;
    tc.epochs = 2;
    tc.batch_size = 20;
    trainer.train(*ds.train, tc);
    auto et =
        profiling::profile_execution_time(net, profiling::edge_fast_platform());
    auto cs = profiling::profile_confidence(net, *ds.test);
    predictor::CSPredictorConfig pc;
    pc.hidden = 16;
    pc.epochs = 6;
    auto pred = std::make_unique<predictor::CSPredictor>(net.num_exits(), pc);
    pred->train(cs);
    return QuantPipeline{std::move(ds), std::move(net), std::move(et),
                         std::move(cs), std::move(pred), nullptr};
  }
};

class QuantEngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    pipeline_ = new QuantPipeline(QuantPipeline::build());
    pipeline_->quant =
        std::make_shared<const nn::quant::QuantizedBackbone>(pipeline_->net);
  }
  static void TearDownTestSuite() {
    delete pipeline_;
    pipeline_ = nullptr;
  }
  static QuantPipeline* pipeline_;
};

QuantPipeline* QuantEngineTest::pipeline_ = nullptr;

void expect_outcome_identical(const runtime::InferenceOutcome& got,
                              const runtime::InferenceOutcome& ref,
                              const std::string& where) {
  // planner_ms is wall-clock search telemetry and excluded, as in the fp32
  // 1-vs-N contract; everything else must agree exactly.
  EXPECT_EQ(got.has_result, ref.has_result) << where;
  EXPECT_EQ(got.exit_index, ref.exit_index) << where;
  EXPECT_EQ(got.correct, ref.correct) << where;
  EXPECT_EQ(got.result_time_ms, ref.result_time_ms) << where;
  EXPECT_EQ(got.deadline_ms, ref.deadline_ms) << where;
  EXPECT_EQ(got.branches_executed, ref.branches_executed) << where;
  EXPECT_EQ(got.searches_run, ref.searches_run) << where;
  EXPECT_EQ(got.completed, ref.completed) << where;
}

TEST_F(QuantEngineTest, BackboneAccounting) {
  auto& p = *pipeline_;
  EXPECT_EQ(p.quant->num_exits(), p.net.num_exits());
  EXPECT_GT(p.quant->quantized_layers(), 0u);
  EXPECT_GT(p.quant->weight_bytes(), 0u);
  // The u8 im2col scratch shrinks the planned arena versus the fp32 plan.
  EXPECT_LE(p.quant->plan().arena_bytes(),
            memplan::plan_for(p.net).arena_bytes());
}

TEST_F(QuantEngineTest, RunConvPartMatchesForwardInto) {
  auto& p = *pipeline_;
  nn::FreshWorkspace ws;
  const auto& sample = p.ds.test->sample(0);
  nn::Tensor cur = sample.image;  // CHW -> (1, C, H, W): conv parts are NCHW
  cur.reshape({1, cur.dim(0), cur.dim(1), cur.dim(2)});
  for (std::size_t i = 0; i < p.quant->num_exits(); ++i) {
    const nn::Tensor a = p.quant->run_conv_part(i, cur);
    nn::Tensor b;
    p.quant->run_conv_part_into(i, cur, b, ws);
    ASSERT_EQ(a.numel(), b.numel()) << "block " << i;
    ASSERT_EQ(0, std::memcmp(a.raw(), b.raw(), a.numel() * sizeof(float)))
        << "block " << i;
    cur = a;
  }
}

TEST_F(QuantEngineTest, BatchedQuantBitIdenticalToSoloQuant) {
  auto& p = *pipeline_;
  const runtime::ElasticConfig cfg;
  runtime::LiveElasticEngine solo{p.net, p.et, p.pred.get(), cfg};
  runtime::BatchedLiveEngine batched{p.net, p.et, p.pred.get(), cfg};
  solo.set_quant_backbone(p.quant);
  batched.set_quant_backbone(p.quant);
  ASSERT_TRUE(solo.quantized());
  ASSERT_TRUE(batched.quantized());
  const core::UniformExitDistribution dist{p.et.total_ms()};

  util::Rng rng{42};
  std::vector<runtime::BatchItem> items;
  for (std::size_t s = 0; s < 6; ++s)
    items.push_back({.image = &p.ds.test->sample(s).image,
                     .label = p.ds.test->sample(s).label,
                     .deadline_ms = dist.sample(rng)});
  items[0].deadline_ms = p.et.conv_ms[0] * 0.5;  // killed before exit 0
  items[1].deadline_ms = 2.0 * p.et.total_ms();  // always completes

  const auto outcomes = batched.run_batched(items, dist);
  ASSERT_EQ(outcomes.size(), items.size());
  for (std::size_t s = 0; s < items.size(); ++s) {
    const auto ref = solo.run(*items[s].image, items[s].label,
                              items[s].deadline_ms, dist);
    expect_outcome_identical(outcomes[s], ref,
                             "batched sample " + std::to_string(s));
  }
}

TEST_F(QuantEngineTest, PrefixResumeQuantBitIdenticalForEveryK) {
  auto& p = *pipeline_;
  const runtime::ElasticConfig cfg;
  runtime::LiveElasticEngine device{p.net, p.et, p.pred.get(), cfg};
  runtime::LiveElasticEngine edge{p.net, p.et, p.pred.get(), cfg};
  device.set_quant_backbone(p.quant);
  edge.set_quant_backbone(p.quant);
  const core::UniformExitDistribution dist{p.et.total_ms()};
  const std::size_t n = p.net.num_exits();
  const double total = p.et.total_ms();

  for (const double deadline : {0.6 * total, 3.0 * total}) {
    for (std::size_t s = 0; s < 3; ++s) {
      const auto& sample = p.ds.test->sample(s);
      const auto ref = device.run(sample.image, sample.label, deadline, dist);
      for (std::size_t k = 0; k <= n; ++k) {
        const std::string where = "deadline=" + std::to_string(deadline) +
                                  " sample=" + std::to_string(s) +
                                  " k=" + std::to_string(k);
        auto prefix =
            device.run_prefix(sample.image, sample.label, k, deadline, dist);
        if (prefix.finished) {
          expect_outcome_identical(prefix.outcome, ref, where + " (finished)");
          continue;
        }
        const auto got = edge.run_resume(prefix.activation, sample.label, k,
                                         prefix.state, deadline, dist);
        expect_outcome_identical(got, ref, where);
      }
    }
  }
}

// -------------------------------------------------------- "-q8" artifacts

TEST(QuantProfile, StemSuffix) {
  EXPECT_EQ(nn::quant::quant_stem("cache/alexnet", false), "cache/alexnet");
  EXPECT_EQ(nn::quant::quant_stem("cache/alexnet", true), "cache/alexnet-q8");
  EXPECT_EQ(std::string{nn::quant::quant_suffix()}, "-q8");
}

TEST(QuantProfile, DerivedETHalvesConvOnly) {
  profiling::ETProfile et;
  et.model_name = "m";
  et.platform_name = "p";
  et.conv_ms = {4.0, 2.0, 1.0};
  et.branch_ms = {0.5, 0.25, 0.125};
  const auto q = nn::quant::quantized_execution_time(et);
  ASSERT_EQ(q.conv_ms.size(), et.conv_ms.size());
  for (std::size_t i = 0; i < et.conv_ms.size(); ++i) {
    EXPECT_DOUBLE_EQ(q.conv_ms[i],
                     et.conv_ms[i] / nn::quant::kQuantConvSpeedup);
    EXPECT_DOUBLE_EQ(q.branch_ms[i], et.branch_ms[i]);
  }
  EXPECT_NE(q.model_name.find(nn::quant::quant_suffix()), std::string::npos);
  EXPECT_EQ(q.platform_name, et.platform_name);
  q.validate();
}

TEST_F(QuantEngineTest, ConfidenceProfileBatchSizeInvariant) {
  auto& p = *pipeline_;
  // Per-sample activation scales make the stacked profiling pass bit-agree
  // with a one-at-a-time pass over the same dataset.
  const auto solo = nn::quant::profile_confidence_quant(*p.quant, *p.ds.test,
                                                        /*batch_size=*/1);
  const auto stacked = nn::quant::profile_confidence_quant(
      *p.quant, *p.ds.test, /*batch_size=*/16);
  ASSERT_EQ(solo.records.size(), p.ds.test->size());
  ASSERT_EQ(stacked.records.size(), solo.records.size());
  ASSERT_EQ(stacked.num_exits, solo.num_exits);
  for (std::size_t r = 0; r < solo.records.size(); ++r) {
    const auto& a = solo.records[r];
    const auto& b = stacked.records[r];
    ASSERT_EQ(a.label, b.label) << "record " << r;
    ASSERT_EQ(a.correct, b.correct) << "record " << r;
    ASSERT_EQ(a.confidence.size(), b.confidence.size()) << "record " << r;
    for (std::size_t e = 0; e < a.confidence.size(); ++e) {
      ASSERT_EQ(a.confidence[e], b.confidence[e])
          << "record " << r << " exit " << e;
      ASSERT_GE(a.confidence[e], 0.0f);
      ASSERT_LE(a.confidence[e], 1.0f);
    }
  }
  solo.validate();
}

/// Whole-file bytes, or empty if unreadable.
std::string slurp(const std::filesystem::path& path) {
  std::ifstream in{path, std::ios::binary};
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST_F(QuantEngineTest, Fp32ArtifactsStayByteIdenticalNextToQ8Set) {
  auto& p = *pipeline_;
  const auto dir = std::filesystem::path{::testing::TempDir()} /
                   "einet_quant_artifacts";
  std::filesystem::create_directories(dir);
  const std::string stem = (dir / "model").string();

  // fp32 artifact set, written first (the pre-quantization state).
  p.et.save(stem + ".et.csv");
  p.cs.save(stem + ".cs.csv");
  const std::string et_bytes = slurp(stem + ".et.csv");
  const std::string cs_bytes = slurp(stem + ".cs.csv");
  ASSERT_FALSE(et_bytes.empty());
  ASSERT_FALSE(cs_bytes.empty());

  // Generating + saving the quantized set must only create the "-q8" twins.
  const std::string qstem = nn::quant::quant_stem(stem, true);
  const auto q_et = nn::quant::quantized_execution_time(p.et);
  const auto q_cs =
      nn::quant::profile_confidence_quant(*p.quant, *p.ds.test, 16);
  q_et.save(qstem + ".et.csv");
  q_cs.save(qstem + ".cs.csv");

  EXPECT_EQ(slurp(stem + ".et.csv"), et_bytes);
  EXPECT_EQ(slurp(stem + ".cs.csv"), cs_bytes);

  // Loader selection: the suffix picks the artifact set, round-tripped
  // through the same CSV codec.
  const auto et_back = profiling::ETProfile::load(qstem + ".et.csv");
  ASSERT_EQ(et_back.conv_ms.size(), q_et.conv_ms.size());
  for (std::size_t i = 0; i < q_et.conv_ms.size(); ++i)
    EXPECT_DOUBLE_EQ(et_back.conv_ms[i], q_et.conv_ms[i]);
  const auto cs_back = profiling::CSProfile::load(qstem + ".cs.csv");
  EXPECT_EQ(cs_back.records.size(), q_cs.records.size());
  EXPECT_EQ(cs_back.num_exits, q_cs.num_exits);
  // And the quantized CS really differs in name so it can't be mistaken for
  // the fp32 artifact downstream.
  EXPECT_NE(cs_back.model_name, p.cs.model_name);

  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace einet
