// Split-execution suite (DESIGN.md §11): prefix/resume bit-identity for
// every split point (in-process and over loopback TCP), the planner's
// link-aware degradation to local execution, mid-offload link kills falling
// back with zero protocol errors, the link estimator's EWMA math, and the
// core split-point search. Runs TSan-clean under EINET_SANITIZE=thread
// (device and edge tiers own separate networks and predictors).
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <memory>
#include <sstream>
#include <vector>

#include "core/split_search.hpp"
#include "core/time_distribution.hpp"
#include "data/synthetic.hpp"
#include "models/backbones.hpp"
#include "models/trainer.hpp"
#include "net/server.hpp"
#include "nn/serialize.hpp"
#include "predictor/cs_predictor.hpp"
#include "profiling/platform.hpp"
#include "profiling/profiler.hpp"
#include "runtime/live_engine.hpp"
#include "scenario/link_script.hpp"
#include "serving/replicate.hpp"
#include "serving/server.hpp"
#include "split/link_estimator.hpp"
#include "split/metrics.hpp"
#include "split/planner.hpp"
#include "split/resume_runner.hpp"
#include "split/split_client.hpp"

namespace einet {
namespace {

// ---------------------------------------------------------------- fixture

/// Device and edge tiers of one deployment: two networks with codec-copied
/// weights, two identically trained predictors, the canonical (edge) ET
/// profile that drives the simulated clock on BOTH halves, and the slower
/// device ET profile the planner prices the prefix with.
struct SplitPipeline {
  data::SyntheticDataset ds;
  models::MultiExitNetwork device_net;
  models::MultiExitNetwork edge_net;
  profiling::ETProfile et;         // canonical clock (edge tier)
  profiling::ETProfile device_et;  // planner cost model only
  profiling::CSProfile cs;
  std::unique_ptr<predictor::CSPredictor> device_pred;
  std::unique_ptr<predictor::CSPredictor> edge_pred;
  std::vector<float> mean_conf;

  static SplitPipeline build() {
    auto spec = data::synth_cifar10_spec(160, 60);
    auto ds = data::make_synthetic(spec);
    util::Rng rng{7};
    auto net = models::make_msdnet(
        models::MsdnetSpec{.blocks = 4, .step = 1, .base = 1, .channel = 6},
        ds.train->input_shape(), ds.train->num_classes(), rng);
    models::MultiExitTrainer trainer{net};
    models::TrainConfig tc;
    tc.epochs = 4;
    tc.batch_size = 20;
    trainer.train(*ds.train, tc);

    // Edge replica: fresh net, weights AND batch-norm running stats shipped
    // through the checked tensor codec (the same bytes a weight distribution
    // would put on disk). Bit-identity across the split depends on the state
    // buffers travelling too.
    util::Rng rng2{99};
    auto edge = models::make_msdnet(
        models::MsdnetSpec{.blocks = 4, .step = 1, .base = 1, .channel = 6},
        ds.train->input_shape(), ds.train->num_classes(), rng2);
    std::stringstream blob;
    nn::save_params(blob, net.params(), net.state());
    nn::load_params(blob, edge.params(), edge.state());

    auto et = profiling::profile_execution_time(
        net, profiling::edge_fast_platform());
    auto device_et = profiling::profile_execution_time(
        net, profiling::edge_slow_platform());
    auto cs = profiling::profile_confidence(net, *ds.test);

    predictor::CSPredictorConfig pc;
    pc.hidden = 32;
    pc.epochs = 8;
    auto device_pred =
        std::make_unique<predictor::CSPredictor>(net.num_exits(), pc);
    device_pred->train(cs);
    // Identical config + seed + data -> bit-identical weights: the tiers
    // agree without sharing mutable state (TSan needs the separation).
    auto edge_pred =
        std::make_unique<predictor::CSPredictor>(net.num_exits(), pc);
    edge_pred->train(cs);

    std::vector<float> mean_conf(cs.num_exits, 0.0f);
    for (const auto& rec : cs.records)
      for (std::size_t e = 0; e < cs.num_exits; ++e)
        mean_conf[e] += rec.confidence[e];
    for (auto& c : mean_conf) c /= static_cast<float>(cs.records.size());

    return SplitPipeline{std::move(ds),        std::move(net),
                         std::move(edge),      std::move(et),
                         std::move(device_et), std::move(cs),
                         std::move(device_pred), std::move(edge_pred),
                         std::move(mean_conf)};
  }
};

class SplitTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    pipeline_ = new SplitPipeline(SplitPipeline::build());
  }
  static void TearDownTestSuite() {
    delete pipeline_;
    pipeline_ = nullptr;
  }
  static SplitPipeline* pipeline_;
};

SplitPipeline* SplitTest::pipeline_ = nullptr;

void expect_same_outcome(const runtime::InferenceOutcome& ref,
                         const runtime::InferenceOutcome& got,
                         const std::string& where) {
  // planner_ms is wall-clock search time — excluded from the contract.
  EXPECT_EQ(ref.has_result, got.has_result) << where;
  EXPECT_EQ(ref.exit_index, got.exit_index) << where;
  EXPECT_EQ(ref.correct, got.correct) << where;
  EXPECT_EQ(ref.completed, got.completed) << where;
  EXPECT_EQ(ref.branches_executed, got.branches_executed) << where;
  EXPECT_EQ(ref.searches_run, got.searches_run) << where;
  EXPECT_EQ(std::bit_cast<std::uint64_t>(ref.result_time_ms),
            std::bit_cast<std::uint64_t>(got.result_time_ms))
      << where;
  EXPECT_EQ(std::bit_cast<std::uint64_t>(ref.deadline_ms),
            std::bit_cast<std::uint64_t>(got.deadline_ms))
      << where;
}

// ------------------------------------------------- prefix/resume identity

TEST_F(SplitTest, PrefixResumeBitIdenticalForEveryK) {
  auto& p = *pipeline_;
  const runtime::ElasticConfig cfg;  // kHybrid search: deterministic
  runtime::LiveElasticEngine device{p.device_net, p.et, p.device_pred.get(),
                                    cfg};
  runtime::LiveElasticEngine edge{p.edge_net, p.et, p.edge_pred.get(), cfg};
  const core::UniformExitDistribution dist{p.et.total_ms()};
  const std::size_t n = p.device_net.num_exits();
  const double total = p.et.total_ms();

  for (const double deadline : {0.35 * total, 0.7 * total, 3.0 * total}) {
    for (std::size_t s = 0; s < 4; ++s) {
      const auto& sample = p.ds.test->sample(s);
      const auto ref = device.run(sample.image, sample.label, deadline, dist);
      for (std::size_t k = 0; k <= n; ++k) {
        const std::string where = "deadline=" + std::to_string(deadline) +
                                  " sample=" + std::to_string(s) +
                                  " k=" + std::to_string(k);
        auto prefix =
            device.run_prefix(sample.image, sample.label, k, deadline, dist);
        if (prefix.finished) {
          expect_same_outcome(ref, prefix.outcome, where + " (finished)");
          continue;
        }
        // The resumed half runs on the OTHER tier's net + predictor.
        const auto got = edge.run_resume(prefix.activation, sample.label, k,
                                         prefix.state, deadline, dist);
        expect_same_outcome(ref, got, where);
      }
    }
  }
}

TEST_F(SplitTest, ResumeRejectsInconsistentSnapshots) {
  auto& p = *pipeline_;
  const runtime::ElasticConfig cfg;
  runtime::LiveElasticEngine device{p.device_net, p.et, p.device_pred.get(),
                                    cfg};
  const core::UniformExitDistribution dist{p.et.total_ms()};
  const auto& sample = p.ds.test->sample(0);
  const double deadline = 3.0 * p.et.total_ms();
  auto prefix = device.run_prefix(sample.image, sample.label, 2, deadline,
                                  dist);
  ASSERT_FALSE(prefix.finished);

  // start_block out of range.
  EXPECT_THROW((void)device.run_resume(prefix.activation, sample.label,
                                       p.device_net.num_exits(), prefix.state,
                                       deadline, dist),
               std::invalid_argument);
  // Session snapshot length disagrees with start_block.
  EXPECT_THROW((void)device.run_resume(prefix.activation, sample.label, 3,
                                       prefix.state, deadline, dist),
               std::invalid_argument);
  // Activation numel disagrees with the block's feature shape.
  auto bad = prefix.state;
  const nn::Tensor wrong{{1, 2}, {0.0f, 0.0f}};
  EXPECT_THROW((void)device.run_resume(wrong, sample.label, 2, bad, deadline,
                                       dist),
               std::invalid_argument);
}

// ------------------------------------------------------ loopback offload

/// Edge stack wired for resumes: a live engine behind make_resume_runner and
/// a TCP front-end with accept_activation on.
struct EdgeStack {
  runtime::LiveElasticEngine live;
  std::unique_ptr<serving::EdgeServer> edge;
  std::unique_ptr<net::EdgeTcpServer> tcp;

  EdgeStack(SplitPipeline& p, const core::TimeDistribution& dist,
            std::size_t workers = 1)
      : live{p.edge_net, p.et, p.edge_pred.get(), runtime::ElasticConfig{}} {
    serving::ServerConfig config;
    config.queue_capacity = 256;
    config.pool.num_workers = workers;
    const auto factory = serving::make_replicated_engine_factory(
        p.et, nullptr, {}, std::vector<float>(p.cs.num_exits, 0.5f));
    edge = std::make_unique<serving::EdgeServer>(
        p.et, factory, split::make_resume_runner(live, dist), config);
    net::TcpServerConfig tsc;
    tsc.accept_activation = true;
    tcp = std::make_unique<net::EdgeTcpServer>(*edge, tsc);
    tcp->start();
  }
  ~EdgeStack() {
    if (tcp) tcp->stop();
    if (edge) edge->shutdown();
  }
};

split::SplitClientConfig client_config(const SplitPipeline& p,
                                       std::uint16_t port) {
  split::SplitClientConfig cc;
  cc.net.port = port;
  cc.planner.device_et = p.device_et;
  cc.planner.edge_et = p.et;
  cc.planner.activation_bytes = split::activation_frame_bytes(p.device_net);
  cc.expected_confidence = p.mean_conf;
  return cc;
}

TEST_F(SplitTest, LoopbackOffloadBitIdenticalForEveryForcedK) {
  auto& p = *pipeline_;
  const core::UniformExitDistribution dist{p.et.total_ms()};
  EdgeStack stack{p, dist};
  runtime::LiveElasticEngine device{p.device_net, p.et, p.device_pred.get(),
                                    runtime::ElasticConfig{}};
  const std::size_t n = p.device_net.num_exits();
  const double total = p.et.total_ms();

  for (const double deadline : {0.7 * total, 3.0 * total}) {
    for (std::size_t k = 0; k < n; ++k) {
      split::SplitClientConfig cc = client_config(p, stack.tcp->port());
      cc.force_split = k;
      split::SplitClient client{device, cc};
      for (std::size_t s = 0; s < 3; ++s) {
        const auto& sample = p.ds.test->sample(s);
        const auto ref =
            device.run(sample.image, sample.label, deadline, dist);
        const auto res =
            client.run(sample.image, sample.label, deadline, dist);
        const std::string where = "deadline=" + std::to_string(deadline) +
                                  " k=" + std::to_string(k) +
                                  " sample=" + std::to_string(s);
        if (res.path == split::SplitPath::kOffloaded)
          EXPECT_EQ(res.split_block, k) << where;
        else
          EXPECT_EQ(res.path, split::SplitPath::kLocal) << where;
        expect_same_outcome(ref, res.outcome, where);
      }
      const auto snap = client.metrics().snapshot();
      EXPECT_EQ(snap.completed, 3u);
      EXPECT_EQ(snap.offloaded + snap.local + snap.local_fallback,
                snap.completed);
      EXPECT_EQ(snap.transport_errors, 0u);
      EXPECT_EQ(snap.protocol_errors, 0u);
    }
  }
  EXPECT_GT(stack.tcp->net_metrics().activations, 0u);
}

TEST_F(SplitTest, MidOffloadLinkKillFallsBackWithoutProtocolErrors) {
  auto& p = *pipeline_;
  const core::UniformExitDistribution dist{p.et.total_ms()};
  EdgeStack stack{p, dist};
  runtime::LiveElasticEngine device{p.device_net, p.et, p.device_pred.get(),
                                    runtime::ElasticConfig{}};
  scenario::LinkScript script{42};
  script.outage_phase(16);

  split::SplitClientConfig cc = client_config(p, stack.tcp->port());
  cc.force_split = 2;  // the prefix holds real exits to fall back to
  cc.net.max_connect_attempts = 2;
  cc.net.request_timeout_ms = 2'000.0;
  split::SplitClient client{device, cc, &script};

  const double deadline = 3.0 * p.et.total_ms();
  std::size_t fallbacks = 0;
  for (std::size_t s = 0; s < 16; ++s) {
    const auto& sample = p.ds.test->sample(s % p.ds.test->size());
    const auto res = client.run(sample.image, sample.label, deadline, dist);
    EXPECT_EQ(res.path, split::SplitPath::kLocalFallback) << s;
    fallbacks += res.path == split::SplitPath::kLocalFallback;
    // The fallback is the device's own partial run — the prefix through
    // block 2 must carry a result when any of its branches executed.
    const auto ref = device.run_prefix(sample.image, sample.label, 2,
                                       deadline, dist);
    EXPECT_EQ(res.outcome.has_result, ref.outcome.has_result) << s;
    EXPECT_EQ(res.outcome.exit_index, ref.outcome.exit_index) << s;
  }
  EXPECT_EQ(fallbacks, 16u);

  const auto snap = client.metrics().snapshot();
  EXPECT_EQ(snap.completed, 16u);
  EXPECT_EQ(snap.local_fallback, 16u);
  EXPECT_EQ(snap.offloaded + snap.local + snap.local_fallback,
            snap.completed);
  EXPECT_EQ(snap.transport_errors, 16u);
  EXPECT_EQ(snap.protocol_errors, 0u);
  EXPECT_EQ(stack.tcp->net_metrics().protocol_errors, 0u);
  // Failures inflated the RTT estimate: the planner would now stay local.
  EXPECT_GT(client.link().rtt_ms(), cc.link.prior_rtt_ms);
  EXPECT_EQ(client.link().failures(), 16u);
}

// -------------------------------------------------------------- planner

TEST_F(SplitTest, PlannerOffloadsOnFastLinkAndDegradesToLocal) {
  auto& p = *pipeline_;
  const core::UniformExitDistribution dist{p.et.total_ms()};
  const double deadline = 1.5 * p.device_et.total_ms();

  split::LinkEstimatorConfig lc;
  lc.prior_rtt_ms = 0.05;
  split::LinkEstimator link{lc};
  split::SplitPlannerConfig pc;
  pc.device_et = p.device_et;  // the device tier is much slower
  pc.edge_et = p.et;
  pc.activation_bytes = split::activation_frame_bytes(p.device_net);
  split::SplitPlanner planner{pc, link};

  const auto healthy = planner.decide(p.mean_conf, dist, deadline);
  EXPECT_TRUE(healthy.offload);
  EXPECT_EQ(healthy.reason, split::SplitReason::kOffload);
  EXPECT_LT(healthy.split_block, p.device_net.num_exits());
  EXPECT_GE(healthy.expectation, healthy.local_expectation);

  // A dying link inflates the RTT estimate past the deadline guard; the
  // planner must price every remote k out and stay local.
  for (int i = 0; i < 12; ++i) link.on_failure();
  const auto degraded = planner.decide(p.mean_conf, dist, deadline);
  EXPECT_FALSE(degraded.offload);
  EXPECT_EQ(degraded.split_block, p.device_net.num_exits());
  EXPECT_EQ(degraded.reason, split::SplitReason::kLinkInfeasible);
}

// ------------------------------------------------------- core split search

TEST(SplitSearch, PicksObviousOptimaAndValidates) {
  const std::size_t n = 3;
  const core::ExitPlan plan{n, /*execute_all=*/true};
  const std::vector<double> dev_conv{10.0, 10.0, 10.0};
  const std::vector<double> dev_branch{1.0, 1.0, 1.0};
  const std::vector<double> edge_conv{1.0, 1.0, 1.0};
  const std::vector<double> edge_branch{0.1, 0.1, 0.1};
  const std::vector<double> bytes{100.0, 100.0, 100.0, 0.0};
  const std::vector<float> conf{0.5f, 0.7f, 0.9f};
  const core::UniformExitDistribution dist{40.0};

  core::SplitCosts costs;
  costs.device_conv_ms = dev_conv;
  costs.device_branch_ms = dev_branch;
  costs.edge_conv_ms = edge_conv;
  costs.edge_branch_ms = edge_branch;
  costs.activation_bytes = bytes;
  costs.rtt_ms = 0.5;
  costs.bytes_per_ms = 1000.0;

  // Device 10x slower, transfer ~0.6 ms: ship the raw input.
  auto res = core::split_point_search(plan, costs, conf, dist, 100.0);
  ASSERT_EQ(res.evals.size(), n + 1);
  EXPECT_EQ(res.best, 0u);
  EXPECT_TRUE(res.evals[0].feasible);
  EXPECT_NEAR(res.evals[0].transfer_ms, 0.6, 1e-12);
  EXPECT_EQ(res.evals[n].transfer_ms, 0.0);
  EXPECT_TRUE(res.evals[n].feasible);
  // Later splits waste slow device blocks: completion grows with k.
  for (std::size_t k = 1; k <= n; ++k)
    EXPECT_GT(res.evals[k].completion_ms, res.evals[k - 1].completion_ms);

  // Unusable link: every remote candidate infeasible, stay local.
  costs.bytes_per_ms = 0.0;
  res = core::split_point_search(plan, costs, conf, dist, 100.0);
  EXPECT_EQ(res.best, n);
  for (std::size_t k = 0; k < n; ++k) EXPECT_FALSE(res.evals[k].feasible);

  // A transfer bigger than the deadline is infeasible even on a live link.
  costs.bytes_per_ms = 1000.0;
  res = core::split_point_search(plan, costs, conf, dist, 0.55);
  EXPECT_EQ(res.best, n);

  // Span-length validation.
  costs.activation_bytes = std::span<const double>{bytes.data(), n};
  EXPECT_THROW(
      (void)core::split_point_search(plan, costs, conf, dist, 100.0),
      std::invalid_argument);
}

// ------------------------------------------------------- link estimator

TEST(LinkEstimator, EwmaDecompositionAndFailurePenalty) {
  split::LinkEstimatorConfig cfg;
  cfg.alpha = 0.5;
  cfg.prior_rtt_ms = 1.0;
  cfg.prior_bytes_per_ms = 1000.0;
  cfg.failure_rtt_penalty = 4.0;
  cfg.max_rtt_ms = 20.0;
  split::LinkEstimator link{cfg};

  // A sample exactly matching the priors is a fixed point.
  link.observe(2.0, 1000);
  EXPECT_NEAR(link.rtt_ms(), 1.0, 1e-12);
  EXPECT_NEAR(link.bytes_per_ms(), 1000.0, 1e-9);

  // A slower sample: rtt_sample = 4 - 1000/1000 = 3, bw_sample = 1000/3.
  link.observe(4.0, 1000);
  EXPECT_NEAR(link.rtt_ms(), 0.5 * 1.0 + 0.5 * 3.0, 1e-12);
  EXPECT_NEAR(link.bytes_per_ms(), 0.5 * 1000.0 + 0.5 * (1000.0 / 3.0), 1e-9);
  EXPECT_EQ(link.observations(), 2u);

  // Failures inflate multiplicatively and saturate at the cap.
  link.on_failure();
  EXPECT_NEAR(link.rtt_ms(), 8.0, 1e-12);
  link.on_failure();
  EXPECT_NEAR(link.rtt_ms(), 20.0, 1e-12);  // capped
  EXPECT_EQ(link.failures(), 2u);

  EXPECT_THROW((void)split::LinkEstimator{split::LinkEstimatorConfig{
                   .alpha = 1.5}},
               std::invalid_argument);
  EXPECT_THROW(link.observe(-1.0, 10), std::invalid_argument);
}

// ------------------------------------------------------------ link script

TEST(LinkScript, DeterministicPhasedFaults) {
  scenario::LinkScript script{7};
  script.healthy_phase(4)
      .degraded_phase(4, 5.0, 2.0, 50.0)
      .outage_phase(4);
  EXPECT_EQ(script.total_requests(), 12u);
  EXPECT_EQ(script.phase_of_request(0), 0u);
  EXPECT_EQ(script.phase_of_request(7), 1u);
  EXPECT_EQ(script.phase_of_request(11), 2u);
  EXPECT_EQ(script.phase_of_request(99), 2u);  // steady state

  for (std::size_t i = 0; i < 4; ++i) {
    const auto f = script.fault_for(i);
    EXPECT_EQ(f.extra_delay_ms, 0.0);
    EXPECT_FALSE(f.drop);
  }
  for (std::size_t i = 4; i < 8; ++i) {
    const auto f = script.fault_for(i);
    EXPECT_GE(f.extra_delay_ms, 5.0);
    EXPECT_LT(f.extra_delay_ms, 7.0);
    EXPECT_EQ(f.bytes_per_ms, 50.0);
    EXPECT_FALSE(f.drop);
  }
  for (std::size_t i = 8; i < 12; ++i) EXPECT_TRUE(script.fault_for(i).drop);

  // Same script, same request index, same fault — order-free determinism.
  scenario::LinkScript again{7};
  again.healthy_phase(4).degraded_phase(4, 5.0, 2.0, 50.0).outage_phase(4);
  for (std::size_t i = 0; i < 12; ++i) {
    const auto a = script.fault_for(i);
    const auto b = again.fault_for(i);
    EXPECT_EQ(a.extra_delay_ms, b.extra_delay_ms) << i;
    EXPECT_EQ(a.drop, b.drop) << i;
  }
  EXPECT_THROW(scenario::LinkScript{1}.phase(scenario::LinkPhase{}),
               std::invalid_argument);
}

// ----------------------------------------------------------- split metrics

TEST(SplitMetrics, IdentityAndHistogram) {
  split::SplitMetrics metrics{4};
  metrics.on_completed(split::SplitPath::kLocal, 4);
  metrics.on_completed(split::SplitPath::kOffloaded, 1);
  metrics.on_completed(split::SplitPath::kOffloaded, 1);
  metrics.on_completed(split::SplitPath::kLocalFallback, 2);
  metrics.on_transport_error();
  metrics.set_link(3.5, 128.0);

  const auto s = metrics.snapshot();
  EXPECT_EQ(s.completed, 4u);
  EXPECT_EQ(s.offloaded + s.local + s.local_fallback, s.completed);
  EXPECT_EQ(s.split_histogram,
            (std::vector<std::uint64_t>{0, 2, 1, 0, 1}));
  EXPECT_EQ(s.transport_errors, 1u);
  EXPECT_EQ(s.link_rtt_ms, 3.5);
  const std::string json = s.to_json();
  EXPECT_NE(json.find("\"local_fallback\":1"), std::string::npos);
  EXPECT_NE(json.find("\"split_histogram\":[0,2,1,0,1]"), std::string::npos);
  EXPECT_THROW(metrics.on_completed(split::SplitPath::kLocal, 9),
               std::out_of_range);
}

}  // namespace
}  // namespace einet
