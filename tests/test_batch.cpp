// Batched-serving suite (DESIGN.md §10): BatchAssembler coalescing/bypass
// semantics, BatchedLiveEngine per-sample bit-identity with the solo live
// engine (including mid-batch preemption evicting only the killed sample),
// and the batched EdgeServer pipeline preserving the aggregate determinism
// contract plus the lifecycle accounting invariants.
#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "core/cancel_token.hpp"
#include "core/time_distribution.hpp"
#include "data/synthetic.hpp"
#include "models/backbones.hpp"
#include "models/trainer.hpp"
#include "predictor/cs_predictor.hpp"
#include "profiling/platform.hpp"
#include "profiling/profiler.hpp"
#include "runtime/batched_engine.hpp"
#include "runtime/live_engine.hpp"
#include "serving/batch/assembler.hpp"
#include "serving/batch/runner.hpp"
#include "serving/replicate.hpp"
#include "serving/server.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace einet {
namespace {

using serving::BoundedQueue;
using serving::OverflowPolicy;
using serving::PushResult;
using serving::Task;
using serving::batch::BatchAssembler;
using serving::batch::BatchAssemblerConfig;
using serving::batch::MicroBatch;

// ---------------------------------------------------------------- fixtures

profiling::ETProfile tiny_et() {
  profiling::ETProfile et;
  et.model_name = "tiny";
  et.platform_name = "test";
  et.conv_ms = {1.0, 1.0, 1.0, 1.0};
  et.branch_ms = {0.5, 0.5, 0.5, 0.5};
  return et;
}

profiling::CSProfile tiny_cs(std::size_t records, std::uint64_t seed = 7) {
  profiling::CSProfile cs;
  cs.model_name = "tiny";
  cs.dataset_name = "synthetic";
  cs.num_exits = 4;
  util::Rng rng{seed};
  for (std::size_t r = 0; r < records; ++r) {
    profiling::CSRecord rec;
    float conf = rng.uniform_f(0.2f, 0.5f);
    for (std::size_t e = 0; e < cs.num_exits; ++e) {
      conf = std::min(1.0f, conf + rng.uniform_f(0.0f, 0.2f));
      rec.confidence.push_back(conf);
      rec.correct.push_back(rng.bernoulli(conf) ? 1 : 0);
    }
    rec.label = r % 10;
    cs.records.push_back(std::move(rec));
  }
  cs.validate();
  return cs;
}

Task make_task(std::uint64_t id, double deadline_ms) {
  Task task;
  task.id = id;
  task.deadline_ms = deadline_ms;
  return task;
}

// ---------------------------------------------------------- BatchAssembler

TEST(BatchAssembler, SealsAtMaxBatchInFifoOrder) {
  BoundedQueue<Task> in{64, OverflowPolicy::kBlock};
  BoundedQueue<MicroBatch> out{64, OverflowPolicy::kBlock};
  serving::MetricsRegistry metrics;
  util::Timer clock;
  BatchAssembler assembler{
      in, out, metrics, clock,
      {.max_batch = 3, .max_wait_ms = 1e6, .bypass_slack_ms = 0.0}};
  assembler.start();

  for (std::uint64_t id = 0; id < 6; ++id)
    ASSERT_EQ(in.push(make_task(id, 10.0)), PushResult::kAccepted);

  for (std::uint64_t b = 0; b < 2; ++b) {
    const auto mb = out.pop();
    ASSERT_TRUE(mb.has_value());
    ASSERT_EQ(mb->size(), 3u);
    EXPECT_FALSE(mb->bypass);
    for (std::uint64_t i = 0; i < 3; ++i)
      EXPECT_EQ(mb->tasks[i].id, b * 3 + i);
  }
  in.close();
  assembler.join();
  EXPECT_EQ(out.pop(), std::nullopt);  // drained and closed

  const auto snap = metrics.snapshot();
  EXPECT_EQ(snap.batches, 2u);
  EXPECT_EQ(snap.bypassed, 0u);
  EXPECT_DOUBLE_EQ(snap.batch_size.stats.mean(), 3.0);
  EXPECT_EQ(snap.assembler_wait.stats.count(), 6u);
}

TEST(BatchAssembler, MaxWaitFlushesPartialGroup) {
  BoundedQueue<Task> in{64, OverflowPolicy::kBlock};
  BoundedQueue<MicroBatch> out{64, OverflowPolicy::kBlock};
  serving::MetricsRegistry metrics;
  util::Timer clock;
  BatchAssembler assembler{
      in, out, metrics, clock,
      {.max_batch = 8, .max_wait_ms = 5.0, .bypass_slack_ms = 0.0}};
  assembler.start();

  ASSERT_EQ(in.push(make_task(0, 10.0)), PushResult::kAccepted);
  ASSERT_EQ(in.push(make_task(1, 10.0)), PushResult::kAccepted);
  // Never reaches max_batch; the wait bound must seal it.
  const auto mb = out.pop();
  ASSERT_TRUE(mb.has_value());
  EXPECT_EQ(mb->size(), 2u);
  EXPECT_FALSE(mb->bypass);

  in.close();
  assembler.join();
}

TEST(BatchAssembler, SlackPoorTaskBypassesAheadOfOpenGroup) {
  BoundedQueue<Task> in{64, OverflowPolicy::kBlock};
  BoundedQueue<MicroBatch> out{64, OverflowPolicy::kBlock};
  serving::MetricsRegistry metrics;
  util::Timer clock;
  BatchAssembler assembler{
      in, out, metrics, clock,
      {.max_batch = 8, .max_wait_ms = 1e6, .bypass_slack_ms = 10.0}};
  assembler.start();

  // Three slack-rich tasks open a group (max_wait is effectively forever),
  // then a slack-poor task arrives: it must come out first, solo.
  for (std::uint64_t id = 0; id < 3; ++id)
    ASSERT_EQ(in.push(make_task(id, 100.0)), PushResult::kAccepted);
  ASSERT_EQ(in.push(make_task(99, 5.0)), PushResult::kAccepted);

  const auto first = out.pop();
  ASSERT_TRUE(first.has_value());
  EXPECT_TRUE(first->bypass);
  ASSERT_EQ(first->size(), 1u);
  EXPECT_EQ(first->tasks[0].id, 99u);
  EXPECT_DOUBLE_EQ(first->tasks[0].deadline_ms, 5.0);

  // Closing the input flushes the still-open group.
  in.close();
  assembler.join();
  const auto second = out.pop();
  ASSERT_TRUE(second.has_value());
  EXPECT_FALSE(second->bypass);
  EXPECT_EQ(second->size(), 3u);
  EXPECT_EQ(out.pop(), std::nullopt);

  const auto snap = metrics.snapshot();
  EXPECT_EQ(snap.batches, 2u);
  EXPECT_EQ(snap.bypassed, 1u);
}

TEST(BatchAssembler, DrainsEmptyInputCleanly) {
  BoundedQueue<Task> in{8, OverflowPolicy::kBlock};
  BoundedQueue<MicroBatch> out{8, OverflowPolicy::kBlock};
  serving::MetricsRegistry metrics;
  util::Timer clock;
  BatchAssembler assembler{in, out, metrics, clock, {}};
  assembler.start();
  in.close();
  assembler.join();
  EXPECT_EQ(out.pop(), std::nullopt);
  EXPECT_EQ(metrics.snapshot().batches, 0u);
}

TEST(BatchAssembler, RejectsZeroMaxBatch) {
  BoundedQueue<Task> in{8};
  BoundedQueue<MicroBatch> out{8};
  serving::MetricsRegistry metrics;
  util::Timer clock;
  EXPECT_THROW(BatchAssembler(in, out, metrics, clock, {.max_batch = 0}),
               std::invalid_argument);
}

// ------------------------------------------------------- BatchedLiveEngine

struct LivePipeline {
  data::SyntheticDataset ds;
  models::MultiExitNetwork net;
  profiling::ETProfile et;
  profiling::CSProfile cs;
  std::unique_ptr<predictor::CSPredictor> pred;

  static LivePipeline build() {
    auto spec = data::synth_cifar10_spec(120, 40);
    auto ds = data::make_synthetic(spec);
    util::Rng rng{7};
    auto net = models::make_msdnet(
        models::MsdnetSpec{.blocks = 4, .step = 1, .base = 1, .channel = 6},
        ds.train->input_shape(), ds.train->num_classes(), rng);
    models::MultiExitTrainer trainer{net};
    models::TrainConfig tc;
    tc.epochs = 2;
    tc.batch_size = 20;
    trainer.train(*ds.train, tc);
    auto et =
        profiling::profile_execution_time(net, profiling::edge_fast_platform());
    auto cs = profiling::profile_confidence(net, *ds.test);
    predictor::CSPredictorConfig pc;
    pc.hidden = 16;
    pc.epochs = 6;
    auto pred = std::make_unique<predictor::CSPredictor>(net.num_exits(), pc);
    pred->train(cs);
    return LivePipeline{std::move(ds), std::move(net), std::move(et),
                        std::move(cs), std::move(pred)};
  }
};

class BatchedEngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    pipeline_ = new LivePipeline(LivePipeline::build());
  }
  static void TearDownTestSuite() {
    delete pipeline_;
    pipeline_ = nullptr;
  }
  static LivePipeline* pipeline_;
};

LivePipeline* BatchedEngineTest::pipeline_ = nullptr;

/// Full-outcome equality except planner_ms (wall-clock search telemetry),
/// matching the serving determinism contract. Double fields use exact ==:
/// the contract is bit-identity, not tolerance.
void expect_outcome_identical(const runtime::InferenceOutcome& batched,
                              const runtime::InferenceOutcome& solo,
                              std::size_t sample) {
  EXPECT_EQ(batched.has_result, solo.has_result) << "sample " << sample;
  EXPECT_EQ(batched.exit_index, solo.exit_index) << "sample " << sample;
  EXPECT_EQ(batched.correct, solo.correct) << "sample " << sample;
  EXPECT_EQ(batched.result_time_ms, solo.result_time_ms)
      << "sample " << sample;
  EXPECT_EQ(batched.deadline_ms, solo.deadline_ms) << "sample " << sample;
  EXPECT_EQ(batched.branches_executed, solo.branches_executed)
      << "sample " << sample;
  EXPECT_EQ(batched.searches_run, solo.searches_run) << "sample " << sample;
  EXPECT_EQ(batched.completed, solo.completed) << "sample " << sample;
}

TEST_F(BatchedEngineTest, DeadlineModeBitIdenticalToSoloPerSample) {
  auto& p = *pipeline_;
  const runtime::ElasticConfig cfg;
  runtime::BatchedLiveEngine batched{p.net, p.et, p.pred.get(), cfg};
  runtime::LiveElasticEngine solo{p.net, p.et, p.pred.get(), cfg};
  const core::UniformExitDistribution dist{p.et.total_ms()};

  // Deadlines spanning the whole range: some die mid-backbone, some finish.
  util::Rng rng{42};
  std::vector<runtime::BatchItem> items;
  for (std::size_t s = 0; s < 8; ++s)
    items.push_back({.image = &p.ds.test->sample(s).image,
                     .label = p.ds.test->sample(s).label,
                     .deadline_ms = dist.sample(rng)});
  items[0].deadline_ms = p.et.conv_ms[0] * 0.5;  // killed before exit 0
  items[1].deadline_ms = 2.0 * p.et.total_ms();  // always completes

  const auto outcomes = batched.run_batched(items, dist);
  ASSERT_EQ(outcomes.size(), items.size());
  bool any_killed = false;
  bool any_completed = false;
  for (std::size_t s = 0; s < items.size(); ++s) {
    const auto ref = solo.run(*items[s].image, items[s].label,
                              items[s].deadline_ms, dist);
    expect_outcome_identical(outcomes[s], ref, s);
    any_killed |= !outcomes[s].completed;
    any_completed |= outcomes[s].completed;
  }
  // The stream above must actually exercise both paths for the bit-identity
  // claim to mean anything.
  EXPECT_TRUE(any_killed);
  EXPECT_TRUE(any_completed);
}

TEST_F(BatchedEngineTest, SingletonBatchMatchesSolo) {
  auto& p = *pipeline_;
  const runtime::ElasticConfig cfg;
  runtime::BatchedLiveEngine batched{p.net, p.et, p.pred.get(), cfg};
  runtime::LiveElasticEngine solo{p.net, p.et, p.pred.get(), cfg};
  const core::UniformExitDistribution dist{p.et.total_ms()};

  const double deadline = 0.7 * p.et.total_ms();
  const runtime::BatchItem item{.image = &p.ds.test->sample(3).image,
                                .label = p.ds.test->sample(3).label,
                                .deadline_ms = deadline};
  const auto outcomes = batched.run_batched({&item, 1}, dist);
  ASSERT_EQ(outcomes.size(), 1u);
  expect_outcome_identical(
      outcomes[0],
      solo.run(*item.image, item.label, deadline, dist), 3);
}

TEST_F(BatchedEngineTest, MidBatchKillEvictsOnlyTheKilledSample) {
  auto& p = *pipeline_;
  const runtime::ElasticConfig cfg;
  runtime::BatchedLiveEngine batched{p.net, p.et, p.pred.get(), cfg};
  runtime::LiveElasticEngine solo{p.net, p.et, p.pred.get(), cfg};
  const core::UniformExitDistribution dist{p.et.total_ms()};

  // Four token-mode members; one token is virtually armed to land mid-run
  // (after block 1's conv, before the backbone ends), the rest never fire.
  std::vector<core::CancelToken> tokens(4);
  tokens[1].arm_virtual(p.et.conv_ms[0] + p.et.branch_ms[0] +
                        0.5 * p.et.conv_ms[1]);
  std::vector<runtime::BatchItem> items;
  for (std::size_t s = 0; s < 4; ++s)
    items.push_back({.image = &p.ds.test->sample(10 + s).image,
                     .label = p.ds.test->sample(10 + s).label,
                     .deadline_ms = 0.0,
                     .cancel = &tokens[s]});

  const auto outcomes = batched.run_batched(items, dist);
  ASSERT_EQ(outcomes.size(), 4u);
  // The killed member was cut short; its neighbours ran the whole plan.
  EXPECT_FALSE(outcomes[1].completed);
  for (std::size_t s : {0u, 2u, 3u}) EXPECT_TRUE(outcomes[s].completed);
  // And every member — killed and survivors alike — is bit-identical to
  // running the same token solo, proving eviction never disturbed the
  // surviving rows of the stacked tensor.
  for (std::size_t s = 0; s < 4; ++s) {
    const auto ref =
        solo.run_cancellable(*items[s].image, items[s].label, tokens[s], dist);
    expect_outcome_identical(outcomes[s], ref, 10 + s);
  }
}

TEST_F(BatchedEngineTest, RejectsInvalidItems) {
  auto& p = *pipeline_;
  runtime::BatchedLiveEngine batched{p.net, p.et, p.pred.get(), {}};
  const core::UniformExitDistribution dist{p.et.total_ms()};
  const runtime::BatchItem null_image{.image = nullptr, .deadline_ms = 1.0};
  EXPECT_THROW((void)batched.run_batched({&null_image, 1}, dist),
               std::invalid_argument);
  EXPECT_TRUE(batched.run_batched({}, dist).empty());
}

// --------------------------------------------------- batched EdgeServer

serving::TaskRunner einet_runner(const core::TimeDistribution& dist) {
  return [&dist](runtime::ElasticEngine& engine, const Task& task,
                 util::Rng&) {
    return engine.run(*task.record, task.deadline_ms, dist);
  };
}

// The batched pipeline (assembler + MicroBatch queue + batch worker loop)
// must preserve the aggregate determinism contract: the same task stream
// yields the same aggregate counters as the unbatched pipeline, because
// per-task outcomes are pure functions of (payload, deadline) regardless of
// how tasks were grouped in flight.
TEST(BatchedEdgeServer, AggregateMatchesUnbatchedPipeline) {
  const auto et = tiny_et();
  const auto cs = tiny_cs(64);
  const core::UniformExitDistribution dist{et.total_ms()};

  predictor::CSPredictorConfig pc;
  pc.hidden = 8;
  pc.epochs = 4;
  predictor::CSPredictor pred{cs.num_exits, pc};
  pred.train(cs);

  util::Rng rng{2024};
  std::vector<std::pair<std::size_t, double>> stream;
  for (int i = 0; i < 300; ++i)
    stream.emplace_back(rng.uniform_int(cs.size()),
                        rng.uniform(0.0, 1.4 * et.total_ms()));

  serving::ServerConfig config;
  config.queue_capacity = 1024;
  config.pool.num_workers = 2;

  const auto run_stream = [&](serving::EdgeServer& server) {
    for (const auto& [idx, deadline] : stream)
      server.submit(cs.records[idx], deadline);
    server.shutdown();
    return server.metrics();
  };

  serving::EdgeServer unbatched{et,
                                serving::make_replicated_engine_factory(
                                    et, &pred, {}),
                                einet_runner(dist), config};
  const auto solo_snap = run_stream(unbatched);

  serving::EdgeServer batched{
      et,
      serving::make_replicated_engine_factory(et, &pred, {}),
      serving::batch::make_solo_batch_runner(einet_runner(dist)),
      {.max_batch = 4, .max_wait_ms = 1.0, .bypass_slack_ms = 2.0},
      config};
  EXPECT_TRUE(batched.batched());
  const auto batch_snap = run_stream(batched);

  // Aggregate determinism across pipelines.
  EXPECT_EQ(batch_snap.submitted, solo_snap.submitted);
  EXPECT_EQ(batch_snap.shed, solo_snap.shed);
  EXPECT_EQ(batch_snap.completed, solo_snap.completed);
  EXPECT_EQ(batch_snap.valid, solo_snap.valid);
  EXPECT_EQ(batch_snap.correct, solo_snap.correct);
  EXPECT_DOUBLE_EQ(batch_snap.accuracy(), solo_snap.accuracy());

  // Lifecycle invariants hold through the assembler.
  EXPECT_EQ(batch_snap.submitted,
            batch_snap.admitted + batch_snap.shed + batch_snap.rejected);
  EXPECT_EQ(batch_snap.completed, batch_snap.admitted);

  // Batch bookkeeping: every admitted task went through exactly one sealed
  // batch, and the slack-poor band of the deadline stream hit the bypass.
  EXPECT_GT(batch_snap.batches, 0u);
  EXPECT_GT(batch_snap.bypassed, 0u);
  EXPECT_EQ(batch_snap.assembler_wait.stats.count(), batch_snap.admitted);
  EXPECT_EQ(batch_snap.batch_size.stats.count(), batch_snap.batches);
  EXPECT_GE(batch_snap.batch_size.stats.max(), 1.0);
  EXPECT_LE(batch_snap.batch_size.stats.max(), 4.0);

  // The unbatched pipeline reports no batch activity at all.
  EXPECT_EQ(solo_snap.batches, 0u);

  // And the JSON export carries the batch block for bench artifacts.
  const auto json = batch_snap.to_json();
  EXPECT_NE(json.find("\"batch\""), std::string::npos);
  EXPECT_NE(json.find("\"assembler_wait_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"bypassed\""), std::string::npos);
}

TEST(BatchedEdgeServer, LiveSubmitRejectsNullImage) {
  const auto et = tiny_et();
  const core::UniformExitDistribution dist{et.total_ms()};
  serving::EdgeServer server{et,
                             serving::make_replicated_engine_factory(
                                 et, nullptr, {},
                                 std::vector<float>(4, 0.5f)),
                             einet_runner(dist)};
  EXPECT_THROW(server.submit_live(nullptr, 0, 5.0), std::invalid_argument);
  server.shutdown();
}

}  // namespace
}  // namespace einet
